package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"fsdl/internal/labelstore"
)

// TestMembershipJoinLeaveDrain walks the admin surface end to end:
// epoch bumps, refusal cases, routing exclusion for drained shards, and
// client-state reuse across epochs.
func TestMembershipJoinLeaveDrain(t *testing.T) {
	_, st := buildFullStore(t, 8)
	n := st.NumVertices()
	tc := startCluster(t, st, 3, 2, nil)
	f := newTestFrontend(t, tc, func(cfg *FrontendConfig) {
		cfg.LabelCacheSize = -1
		cfg.HedgeDelay = -1
	})
	ctx := context.Background()

	if f.Epoch() != 1 {
		t.Fatalf("fresh frontend epoch %d, want 1", f.Epoch())
	}

	// Refusals fail loudly and leave the epoch alone.
	if _, err := f.Join("shard0", "127.0.0.1:1"); err == nil || !strings.Contains(err.Error(), "already a member") {
		t.Fatalf("duplicate join: %v", err)
	}
	if _, err := f.Join("ghost", "127.0.0.1:1"); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("unreachable join: %v", err)
	}
	_, wrongAddr := startExtraShard(t, ShardConfig{Store: buildStoreOnly(t, 4), Name: "wrong"})
	if _, err := f.Join("wrong", wrongAddr); err == nil || !strings.Contains(err.Error(), "vertex space") {
		t.Fatalf("mismatched-n join: %v", err)
	}
	if _, err := f.Leave("ghost"); err == nil || !strings.Contains(err.Error(), "not a member") {
		t.Fatalf("leave of non-member: %v", err)
	}
	if _, err := f.Drain("ghost", true); err == nil || !strings.Contains(err.Error(), "not a member") {
		t.Fatalf("drain of non-member: %v", err)
	}
	if f.Epoch() != 1 {
		t.Fatalf("refused admin ops bumped the epoch to %d", f.Epoch())
	}

	// A real join: the new shard serves the whole store, so it can field
	// any vertex the ring hands it.
	_, addr3 := startExtraShard(t, ShardConfig{Store: st, Name: "shard3"})
	epoch, err := f.Join("shard3", addr3)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if epoch != 2 || f.Epoch() != 2 {
		t.Fatalf("epoch %d/%d after join, want 2", epoch, f.Epoch())
	}
	if h := f.Health(); len(h) != 4 {
		t.Fatalf("%d shards in health after join, want 4", len(h))
	}
	for v := 0; v < n; v++ {
		if _, err := f.Label(ctx, v); err != nil {
			t.Fatalf("Label(%d) after join: %v", v, err)
		}
	}

	// Drain: excluded from routing (zero fetches land on it), epoch
	// bumped, flagged in health — but still a member.
	preDrain := f.state.Load().clientByName("shard3")
	if epoch, err = f.Drain("shard3", true); err != nil || epoch != 3 {
		t.Fatalf("drain: epoch %d err %v, want 3/nil", epoch, err)
	}
	drainedFetches := preDrain.fetches.Load()
	for v := 0; v < n; v++ {
		if _, err := f.Label(ctx, v); err != nil {
			t.Fatalf("Label(%d) with shard3 draining: %v", v, err)
		}
	}
	if got := preDrain.fetches.Load(); got != drainedFetches {
		t.Fatalf("draining shard fielded %d fetches", got-drainedFetches)
	}
	found := false
	for _, h := range f.Health() {
		if h.Name == "shard3" {
			found = true
			if !h.Draining {
				t.Fatal("draining shard not flagged in health")
			}
		}
	}
	if !found {
		t.Fatal("draining shard missing from health; drain must not remove membership")
	}

	// Undrain: traffic returns.
	if _, err := f.Drain("shard3", false); err != nil {
		t.Fatalf("undrain: %v", err)
	}
	for v := 0; v < n; v++ {
		if _, err := f.Label(ctx, v); err != nil {
			t.Fatal(err)
		}
	}
	if got := preDrain.fetches.Load(); got == drainedFetches {
		t.Fatal("undrained shard still fielding no fetches")
	}

	// Leave: epoch bumps, the survivor set keeps serving, and the
	// surviving shards' clients are the same objects across the swap
	// (pool, health and breaker state carry over).
	before0 := f.state.Load().clientByName("shard0")
	epoch, err = f.Leave("shard3")
	if err != nil || epoch != 5 {
		t.Fatalf("leave: epoch %d err %v, want 5/nil", epoch, err)
	}
	if after0 := f.state.Load().clientByName("shard0"); after0 != before0 {
		t.Fatal("membership swap rebuilt a surviving shard's client; pooled state lost")
	}
	if f.state.Load().clientByName("shard3") != nil {
		t.Fatal("departed shard still in the ring state")
	}
	for v := 0; v < n; v++ {
		if _, err := f.Label(ctx, v); err != nil {
			t.Fatalf("Label(%d) after leave: %v", v, err)
		}
	}

	// The last shard may never leave.
	if _, err := f.Leave("shard0"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Leave("shard1"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Leave("shard2"); err == nil || !strings.Contains(err.Error(), "last shard") {
		t.Fatalf("leave of the last shard: %v", err)
	}
}

// buildStoreOnly is buildFullStore without returning the graph, for
// stores that exist only to have the wrong vertex space.
func buildStoreOnly(t testing.TB, side int) *labelstore.Store {
	_, st := buildFullStore(t, side)
	return st
}

// TestMembershipEpochIsolatesInflightFetch: a fetch loads one ring
// state and finishes against it even when a membership change swaps the
// epoch mid-flight — the swap must never split a scatter across rings.
func TestMembershipEpochIsolatesInflightFetch(t *testing.T) {
	_, st := buildFullStore(t, 8)

	// Stall shard0's fetches so the scatter is in flight while we swap.
	stall := make(chan struct{}, 1)
	release := make(chan struct{})
	tc := startCluster(t, st, 3, 2, map[int]func(byte) error{
		0: func(op byte) error {
			if op == OpGetLabels || op == OpGetLabelsGen {
				select {
				case stall <- struct{}{}:
				default:
				}
				<-release
			}
			return nil
		},
	})
	f := newTestFrontend(t, tc, func(cfg *FrontendConfig) {
		cfg.LabelCacheSize = -1
		cfg.HedgeDelay = -1
		cfg.FetchTimeout = 5 * time.Second
	})
	ctx := context.Background()

	// Find a vertex whose primary is shard 0 so the stall bites.
	ring := f.state.Load().ring
	v := -1
	for i := 0; i < st.NumVertices(); i++ {
		if ring.Primary(int32(i)) == 0 {
			v = i
			break
		}
	}
	if v < 0 {
		t.Fatal("shard0 owns nothing; ring layout changed")
	}

	got := make(chan error, 1)
	go func() {
		_, err := f.Label(ctx, v)
		got <- err
	}()
	<-stall // the fetch is pinned inside shard0's handler

	// Swap the membership underneath it.
	_, addr3 := startExtraShard(t, ShardConfig{Store: st, Name: "shard3"})
	if _, err := f.Join("shard3", addr3); err != nil {
		t.Fatalf("join mid-fetch: %v", err)
	}
	close(release)

	if err := <-got; err != nil {
		t.Fatalf("in-flight fetch broke across the epoch swap: %v", err)
	}
	if f.Epoch() != 2 {
		t.Fatalf("epoch %d, want 2", f.Epoch())
	}
}
