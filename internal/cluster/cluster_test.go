package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"fsdl/internal/core"
	"fsdl/internal/gen"
	"fsdl/internal/graph"
	"fsdl/internal/labelstore"
)

// buildFullStore builds a grid scheme and round-trips it through the
// labelstore container.
func buildFullStore(t testing.TB, side int) (*graph.Graph, *labelstore.Store) {
	t.Helper()
	g := gen.Grid2D(side, side)
	s, err := core.BuildScheme(g, 2)
	if err != nil {
		t.Fatalf("BuildScheme: %v", err)
	}
	var buf bytes.Buffer
	if err := labelstore.Save(&buf, s, nil); err != nil {
		t.Fatalf("Save: %v", err)
	}
	st, err := labelstore.Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return g, st
}

// testCluster is a live in-process cluster: shard servers listening on
// loopback, plus the membership that reaches them.
type testCluster struct {
	membership *Membership
	shards     []*ShardServer
	stores     []*labelstore.Store
}

// startCluster partitions st by ring ownership over `shards` nodes with
// replication R and starts a ShardServer per partition. hooks[i], when
// set, becomes shard i's FaultHook.
func startCluster(t testing.TB, st *labelstore.Store, shards, r int, hooks map[int]func(byte) error) *testCluster {
	t.Helper()
	names := make([]Node, shards)
	for i := range names {
		names[i] = Node{Name: fmt.Sprintf("shard%d", i)}
	}
	ring := NewRing(names, r)
	parts := ring.Partition(st.NumVertices())

	tc := &testCluster{membership: &Membership{Replication: r}}
	for i := 0; i < shards; i++ {
		var buf bytes.Buffer
		// A shard holds only the vertices in its slice that the store has
		// a label for (region bundles cover a subset of [0,n)).
		var ids []int
		for _, v := range parts[i] {
			if st.Has(v) {
				ids = append(ids, v)
			}
		}
		if err := st.SaveVertices(&buf, ids); err != nil {
			t.Fatalf("SaveVertices shard %d: %v", i, err)
		}
		ps, err := labelstore.Load(&buf)
		if err != nil {
			t.Fatalf("Load shard %d: %v", i, err)
		}
		srv, err := NewShardServer(ShardConfig{Store: ps, Name: names[i].Name, FaultHook: hooks[i]})
		if err != nil {
			t.Fatalf("NewShardServer %d: %v", i, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		go srv.Serve(ln)
		tc.membership.Nodes = append(tc.membership.Nodes, Node{Name: names[i].Name, Addr: ln.Addr().String()})
		tc.shards = append(tc.shards, srv)
		tc.stores = append(tc.stores, ps)
	}
	t.Cleanup(func() {
		for _, s := range tc.shards {
			s.Close()
		}
	})
	return tc
}

func newTestFrontend(t testing.TB, tc *testCluster, mut func(*FrontendConfig)) *Frontend {
	t.Helper()
	cfg := FrontendConfig{
		Membership:     tc.membership,
		FetchTimeout:   2 * time.Second,
		DialTimeout:    500 * time.Millisecond,
		HealthInterval: 50 * time.Millisecond,
		HealthTimeout:  500 * time.Millisecond,
		StartupTimeout: 5 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	f, err := NewFrontend(cfg)
	if err != nil {
		t.Fatalf("NewFrontend: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func labelBytes(t testing.TB, l *core.Label) []byte {
	t.Helper()
	buf, nbits := l.Encode()
	return buf[:(nbits+7)/8]
}

func TestClusterFetchMatchesStore(t *testing.T) {
	_, st := buildFullStore(t, 8)
	tc := startCluster(t, st, 3, 2, nil)
	f := newTestFrontend(t, tc, nil)

	if f.NumVertices() != st.NumVertices() {
		t.Fatalf("NumVertices = %d, want %d", f.NumVertices(), st.NumVertices())
	}
	if f.NumLabels() != st.NumLabels() {
		t.Fatalf("NumLabels = %d, want %d", f.NumLabels(), st.NumLabels())
	}
	ctx := context.Background()
	for v := 0; v < st.NumVertices(); v++ {
		got, err := f.Label(ctx, v)
		if err != nil {
			t.Fatalf("Label(%d): %v", v, err)
		}
		want, err := st.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(labelBytes(t, got), labelBytes(t, want)) {
			t.Fatalf("label %d differs between cluster and local store", v)
		}
	}
	// Second pass is all cache hits.
	h0, _ := f.LabelCacheStats()
	for v := 0; v < st.NumVertices(); v++ {
		if _, err := f.Label(ctx, v); err != nil {
			t.Fatal(err)
		}
	}
	h1, _ := f.LabelCacheStats()
	if h1-h0 != int64(st.NumVertices()) {
		t.Fatalf("second pass hit the cache %d times, want %d", h1-h0, st.NumVertices())
	}
}

func TestClusterPrefetchWarmsCache(t *testing.T) {
	_, st := buildFullStore(t, 6)
	tc := startCluster(t, st, 3, 2, nil)
	f := newTestFrontend(t, tc, nil)
	ctx := context.Background()

	ids := []int{0, 5, 9, 14, 22, 30, 35, 35, -3, 9999} // dups and junk tolerated
	f.Prefetch(ctx, ids)
	h0, m0 := f.LabelCacheStats()
	for _, v := range []int{0, 5, 9, 14, 22, 30, 35} {
		if _, err := f.Label(ctx, v); err != nil {
			t.Fatalf("Label(%d) after prefetch: %v", v, err)
		}
	}
	h1, m1 := f.LabelCacheStats()
	if m1 != m0 {
		t.Fatalf("labels fetched again after prefetch: misses %d→%d", m0, m1)
	}
	if h1-h0 != 7 {
		t.Fatalf("prefetch warmed %d of 7 labels", h1-h0)
	}
}

func TestClusterFailoverWithReplicaUp(t *testing.T) {
	_, st := buildFullStore(t, 8)
	tc := startCluster(t, st, 3, 2, nil)
	f := newTestFrontend(t, tc, nil)
	ctx := context.Background()

	// Kill shard 0. Every label it owned as primary must still resolve
	// from its replica.
	tc.shards[0].Close()
	for v := 0; v < st.NumVertices(); v++ {
		if _, err := f.Label(ctx, v); err != nil {
			t.Fatalf("Label(%d) with shard0 down: %v", v, err)
		}
	}
	if f.met.failovers.Load() == 0 {
		t.Fatal("no failovers recorded though a shard was down")
	}
	var sb strings.Builder
	f.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), "fsdl_cluster_failovers_total") {
		t.Fatal("metrics exposition missing failover counter")
	}
}

func TestClusterUnavailableWhenAllReplicasDown(t *testing.T) {
	_, st := buildFullStore(t, 6)
	tc := startCluster(t, st, 3, 1, nil) // R=1: no replicas
	f := newTestFrontend(t, tc, func(cfg *FrontendConfig) {
		cfg.FetchTimeout = 300 * time.Millisecond
	})
	ctx := context.Background()

	ring := tc.membership.Ring()
	victim := ring.Primary(0)
	tc.shards[victim].Close()
	// Give the health loop a beat to notice.
	time.Sleep(150 * time.Millisecond)

	sawUnavailable := false
	for v := 0; v < st.NumVertices(); v++ {
		_, err := f.Label(ctx, v)
		if ring.Primary(int32(v)) == victim {
			if err == nil {
				t.Fatalf("Label(%d) succeeded though its only owner is down", v)
			}
			if strings.Contains(err.Error(), "no label for vertex") {
				t.Fatalf("Label(%d): down shard misreported as absent label: %v", v, err)
			}
			sawUnavailable = true
		} else if err != nil {
			t.Fatalf("Label(%d) on a live shard: %v", v, err)
		}
	}
	if !sawUnavailable {
		t.Fatal("victim shard owned no vertices; test is vacuous")
	}
	if f.met.unavailable.Load() == 0 {
		t.Fatal("unavailable counter not incremented")
	}
}

func TestClusterAbsentLabelIsAuthoritative(t *testing.T) {
	g, _ := buildFullStore(t, 6)
	// A store covering only half the vertex space: queries for the rest
	// must come back "no label", not "unreachable".
	s, err := core.BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for v := 0; v < g.NumVertices()/2; v++ {
		ids = append(ids, v)
	}
	var buf bytes.Buffer
	if err := labelstore.Save(&buf, s, ids); err != nil {
		t.Fatal(err)
	}
	st, err := labelstore.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	tc := startCluster(t, st, 3, 2, nil)
	f := newTestFrontend(t, tc, nil)
	ctx := context.Background()

	if _, err := f.Label(ctx, 2); err != nil {
		t.Fatalf("present label: %v", err)
	}
	_, err = f.Label(ctx, g.NumVertices()-1)
	if err == nil || !strings.Contains(err.Error(), "no label for vertex") {
		t.Fatalf("absent label: got %v, want authoritative no-label error", err)
	}
	// The absence is negative-cached: a repeat lookup is served locally.
	n0 := f.met.negHits.Load()
	if _, err := f.Label(ctx, g.NumVertices()-1); err == nil {
		t.Fatal("absent label resolved on retry")
	}
	if f.met.negHits.Load() != n0+1 {
		t.Fatal("repeat absent lookup missed the negative cache")
	}
}

func TestClusterHedgeRacesSlowPrimary(t *testing.T) {
	_, st := buildFullStore(t, 6)
	// Pick a vertex and make its primary artificially slow; the hedge
	// must win via the replica long before the primary responds.
	names := []Node{{Name: "shard0"}, {Name: "shard1"}, {Name: "shard2"}}
	ring := NewRing(names, 2)
	const v = 17
	primary := ring.Primary(v)

	slow := make(chan struct{})
	hooks := map[int]func(byte) error{
		primary: func(op byte) error {
			if op == OpGetLabels || op == OpGetLabelsGen {
				<-slow // stall label fetches; pings stay fast
			}
			return nil
		},
	}
	tc := startCluster(t, st, 3, 2, hooks)
	defer close(slow)
	f := newTestFrontend(t, tc, func(cfg *FrontendConfig) {
		cfg.HedgeDelay = 20 * time.Millisecond
		cfg.FetchTimeout = 10 * time.Second // the stall must lose to the hedge, not to a timeout
	})

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := f.Label(ctx, v); err != nil {
		t.Fatalf("hedged Label: %v (after %v)", err, time.Since(start))
	}
	if f.met.hedges.Load() == 0 {
		t.Fatal("no hedge launched against the stalled primary")
	}
}

func TestShardServerProtocolErrors(t *testing.T) {
	_, st := buildFullStore(t, 4)
	srv, err := NewShardServer(ShardConfig{Store: st, Name: "s0"})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Unknown op → OpError, connection stays usable.
	if err := WriteFrame(conn, 0x7f, nil); err != nil {
		t.Fatal(err)
	}
	op, _, err := ReadFrame(conn)
	if err != nil || op != OpError {
		t.Fatalf("unknown op: got op=%d err=%v, want OpError", op, err)
	}
	// Out-of-range vertex → OpError.
	if err := WriteFrame(conn, OpGetLabels, AppendLabelRequest(nil, []int32{99})); err != nil {
		t.Fatal(err)
	}
	op, payload, err := ReadFrame(conn)
	if err != nil || op != OpError || !strings.Contains(string(payload), "out of range") {
		t.Fatalf("out-of-range id: op=%d payload=%q err=%v", op, payload, err)
	}
	// A well-formed request still works on the same connection.
	if err := WriteFrame(conn, OpGetLabels, AppendLabelRequest(nil, []int32{1})); err != nil {
		t.Fatal(err)
	}
	op, payload, err = ReadFrame(conn)
	if err != nil || op != OpLabels {
		t.Fatalf("valid request after errors: op=%d err=%v", op, err)
	}
	if _, recs, err := ParseLabelResponse(payload); err != nil || len(recs) != 1 || !recs[0].Present {
		t.Fatalf("bad label response: %v", err)
	}
	// A corrupt frame poisons the connection: the server hangs up.
	bad := AppendFrame(nil, OpPing, nil)
	bad[len(bad)-1] ^= 0xff
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := ReadFrame(conn); err == nil {
		t.Fatal("server answered a corrupt frame instead of hanging up")
	}
}

func TestFrontendStartupRequiresAShard(t *testing.T) {
	m := &Membership{Replication: 1, Nodes: []Node{{Name: "ghost", Addr: "127.0.0.1:1"}}}
	_, err := NewFrontend(FrontendConfig{
		Membership:     m,
		StartupTimeout: 300 * time.Millisecond,
		HealthTimeout:  100 * time.Millisecond,
		DialTimeout:    100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("frontend started with no reachable shard")
	}
}

// TestShardResponseChunkingMatchesStore shrinks the per-frame budgets
// so every batch fetch crosses the chunking paths — multi-frame
// OpLabelsPart responses and split OpGetLabels requests — and verifies
// the reassembled labels are byte-identical to the local store.
func TestShardResponseChunkingMatchesStore(t *testing.T) {
	_, st := buildFullStore(t, 8)
	// Budget: the largest single record plus slack, so every record fits
	// a frame but any two large ones force a chunk boundary.
	maxRec := 0
	for _, v := range st.Vertices() {
		if bits, _, ok := st.Raw(v); ok {
			r := LabelRecord{Vertex: int32(v), Present: true, Bits: bits}
			if sz := r.wireSize(); sz > maxRec {
				maxRec = sz
			}
		}
	}
	defer func(a, b int) { maxLabelChunkPayload, maxRequestIDs = a, b }(maxLabelChunkPayload, maxRequestIDs)
	maxLabelChunkPayload = maxRec + 64
	maxRequestIDs = 7

	tc := startCluster(t, st, 2, 1, nil)
	f := newTestFrontend(t, tc, nil)
	ctx := context.Background()

	ids := make([]int, st.NumVertices())
	for v := range ids {
		ids[v] = v
	}
	f.Prefetch(ctx, ids)
	for v := 0; v < st.NumVertices(); v++ {
		got, err := f.Label(ctx, v)
		if err != nil {
			t.Fatalf("Label(%d) with chunked wire: %v", v, err)
		}
		want, err := st.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(labelBytes(t, got), labelBytes(t, want)) {
			t.Fatalf("label %d differs through chunked fetch", v)
		}
	}

	// A direct big request must actually produce continuation frames.
	conn, err := net.Dial("tcp", tc.membership.Nodes[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	all := make([]int32, st.NumVertices())
	for v := range all {
		all[v] = int32(v)
	}
	if err := WriteFrame(conn, OpGetLabels, AppendLabelRequest(nil, all)); err != nil {
		t.Fatal(err)
	}
	frames := 0
	for {
		op, payload, err := ReadFrame(conn)
		if err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		if op != OpLabels && op != OpLabelsPart {
			t.Fatalf("frame %d: unexpected op %d (%s)", frames, op, payload)
		}
		if len(payload) > maxLabelChunkPayload {
			t.Fatalf("chunk payload %d exceeds budget %d", len(payload), maxLabelChunkPayload)
		}
		if _, _, err := ParseLabelResponse(payload); err != nil {
			t.Fatalf("chunk %d does not parse: %v", frames, err)
		}
		frames++
		if op == OpLabels {
			break
		}
	}
	if frames < 2 {
		t.Fatalf("big response arrived in %d frame(s); chunking never engaged", frames)
	}
}

// TestShardOversizedRecordAnswersError pins the no-panic contract: when
// even a single record cannot fit a frame, the shard answers OpError on
// a live connection instead of dying in AppendFrame.
func TestShardOversizedRecordAnswersError(t *testing.T) {
	_, st := buildFullStore(t, 4)
	defer func(a int) { maxLabelChunkPayload = a }(maxLabelChunkPayload)
	maxLabelChunkPayload = 8 // below even the chunk header

	srv, err := NewShardServer(ShardConfig{Store: st, Name: "s0"})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, OpGetLabels, AppendLabelRequest(nil, []int32{1})); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	op, payload, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("shard dropped the connection instead of answering: %v", err)
	}
	if op != OpError || !strings.Contains(string(payload), "too large") {
		t.Fatalf("got op=%d payload=%q, want OpError about an oversized label", op, payload)
	}
	// The connection survives for well-formed traffic.
	if err := WriteFrame(conn, OpPing, nil); err != nil {
		t.Fatal(err)
	}
	if op, _, err = ReadFrame(conn); err != nil || op != OpPong {
		t.Fatalf("connection unusable after oversize error: op=%d err=%v", op, err)
	}
}

// TestSalvagedShardFailsOverToReplica: a shard running off a
// salvage-loaded partition answers lost records with the "unknown"
// state, so the frontend advances to an intact replica instead of
// negative-caching the loss into a permanent 404.
func TestSalvagedShardFailsOverToReplica(t *testing.T) {
	_, st := buildFullStore(t, 6)

	// shard1's copy is damaged: truncate the serialized store so the
	// tail records are lost in salvage.
	var buf bytes.Buffer
	if err := st.SaveVertices(&buf, st.Vertices()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	salvStore, rep, err := labelstore.LoadPartial(bytes.NewReader(full[:len(full)-100]))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost() == 0 {
		t.Fatal("truncation lost no records; test is vacuous")
	}

	mk := func(cfg ShardConfig) string {
		t.Helper()
		srv, err := NewShardServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		return ln.Addr().String()
	}
	addr0 := mk(ShardConfig{Store: st, Name: "shard0"})
	addr1 := mk(ShardConfig{Store: salvStore, Name: "shard1", Report: rep})

	// R=2 over two shards: both own every vertex, so each lost label has
	// an intact replica at shard0 regardless of who is primary.
	m := &Membership{Replication: 2, Nodes: []Node{
		{Name: "shard0", Addr: addr0},
		{Name: "shard1", Addr: addr1},
	}}
	f := newTestFrontend(t, &testCluster{membership: m}, nil)
	ctx := context.Background()

	// Every label must resolve — salvage loss on one replica is not
	// absence — and none may land in the negative cache.
	for v := 0; v < st.NumVertices(); v++ {
		got, err := f.Label(ctx, v)
		if err != nil {
			t.Fatalf("Label(%d) with a salvaged replica: %v", v, err)
		}
		want, err := st.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(labelBytes(t, got), labelBytes(t, want)) {
			t.Fatalf("label %d differs after salvage failover", v)
		}
	}
	if f.met.unavailable.Load() != 0 {
		t.Fatalf("%d labels reported unavailable though shard0 holds everything", f.met.unavailable.Load())
	}

	// The wire answer for a lost vertex is the unknown state, not
	// authoritative absence.
	lost := -1
	for _, v := range st.Vertices() {
		if !salvStore.Has(v) {
			lost = v
			break
		}
	}
	if lost < 0 {
		t.Fatal("no lost vertex found")
	}
	conn, err := net.Dial("tcp", addr1)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, OpGetLabels, AppendLabelRequest(nil, []int32{int32(lost)})); err != nil {
		t.Fatal(err)
	}
	op, payload, err := ReadFrame(conn)
	if err != nil || op != OpLabels {
		t.Fatalf("salvaged shard: op=%d err=%v", op, err)
	}
	_, recs, err := ParseLabelResponse(payload)
	if err != nil || len(recs) != 1 {
		t.Fatalf("bad response from salvaged shard: %v", err)
	}
	if recs[0].Present || !recs[0].Unknown {
		t.Fatalf("lost record answered present=%v unknown=%v, want the unknown state", recs[0].Present, recs[0].Unknown)
	}
}

// TestSweepHealthExcludesMismatchedShard: a shard that comes (back) up
// serving a partition from a different store must be excluded from
// routing by the health sweep, not merely fail every fetch.
func TestSweepHealthExcludesMismatchedShard(t *testing.T) {
	_, st := buildFullStore(t, 6)  // n = 36
	_, st2 := buildFullStore(t, 4) // n = 16: a different store entirely

	shards := []*restartableShard{
		{store: st, name: "shard0", addr: "127.0.0.1:0"},
		{store: st, name: "shard1", addr: "127.0.0.1:0"},
	}
	m := &Membership{Replication: 1}
	for _, sh := range shards {
		sh.start(t)
		m.Nodes = append(m.Nodes, Node{Name: sh.name, Addr: sh.addr})
	}
	t.Cleanup(func() {
		for _, sh := range shards {
			sh.stop()
		}
	})
	f := newTestFrontend(t, &testCluster{membership: m}, func(cfg *FrontendConfig) {
		cfg.HealthInterval = 25 * time.Millisecond
	})

	// shard1 restarts on the same address with the wrong store.
	shards[1].stop()
	shards[1].store = st2
	shards[1].start(t)

	deadline := time.Now().Add(3 * time.Second)
	for {
		h := f.Health()
		if !h[1].Healthy && h[1].Mismatched {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mismatched shard still healthy=%v mismatched=%v after restart with wrong store", h[1].Healthy, h[1].Mismatched)
		}
		time.Sleep(20 * time.Millisecond)
	}
	var sb strings.Builder
	f.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), `fsdl_cluster_shard_mismatched{shard="shard1"} 1`) {
		t.Fatal("metrics exposition missing the mismatched-shard gauge")
	}
	// shard0 stays healthy and keeps serving its slice.
	if h := f.Health(); !h[0].Healthy {
		t.Fatal("intact shard went unhealthy")
	}
}
