package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"fsdl/internal/labelstore"
)

// ShardConfig configures a ShardServer.
type ShardConfig struct {
	// Store is the shard's partition of the label space (required).
	// The store's vertex space is the global n; NumLabels is just this
	// shard's slice.
	Store *labelstore.Store
	// Name identifies the shard in errors (optional).
	Name string
	// FaultHook, when non-nil, is consulted once per received request
	// frame; a non-nil return makes the server drop the connection
	// without replying — the chaos tests' injection point for
	// crash-mid-request behavior.
	FaultHook func(op byte) error
}

// ShardServer serves one partition of a label store over the cluster
// wire protocol: OpGetLabels batches and OpPing health probes. It never
// decodes a label — records ship as stored bytes and the frontend
// decodes locally, which is the whole point of the labeling model.
// Requests on one connection are answered in order; the frontend pools
// connections for parallelism.
type ShardServer struct {
	cfg ShardConfig

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// Requests/labelsServed are observability counters for tests and
	// the shard daemon's exit log.
	Requests     atomic.Int64
	LabelsServed atomic.Int64
}

// NewShardServer builds a server over cfg.Store.
func NewShardServer(cfg ShardConfig) (*ShardServer, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("cluster: ShardConfig.Store is required")
	}
	return &ShardServer{cfg: cfg, conns: make(map[net.Conn]struct{})}, nil
}

// ListenAndServe listens on addr and serves until Close.
func (s *ShardServer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. A clean Close returns
// nil.
func (s *ShardServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("cluster: shard server already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Addr returns the listening address (nil before Serve).
func (s *ShardServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, severs every open connection, and waits for
// the connection handlers to drain. Safe to call more than once.
func (s *ShardServer) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *ShardServer) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	// scratch buffers reused across requests on this connection.
	var payload, frame []byte
	for {
		op, req, err := ReadFrame(br)
		if err != nil {
			// EOF, peer reset, or untrustworthy framing: either way the
			// conversation is over.
			return
		}
		s.Requests.Add(1)
		if s.cfg.FaultHook != nil {
			if err := s.cfg.FaultHook(op); err != nil {
				return
			}
		}
		payload = payload[:0]
		respOp := OpError
		switch op {
		case OpPing:
			respOp = OpPong
			payload = AppendPong(payload, s.cfg.Store.NumVertices(), s.cfg.Store.NumLabels())
		case OpGetLabels:
			ids, err := ParseLabelRequest(req)
			if err == nil {
				err = s.checkRange(ids)
			}
			if err != nil {
				payload = append(payload, s.errText(err)...)
				break
			}
			respOp = OpLabels
			payload = s.appendLabels(payload, ids)
		default:
			payload = append(payload, s.errText(fmt.Errorf("cluster: unknown op %d", op))...)
		}
		frame = AppendFrame(frame[:0], respOp, payload)
		if _, err := bw.Write(frame); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// checkRange rejects requests naming vertices outside the store's
// vertex space — those are caller bugs, not absent records, and a
// response record could not even encode them.
func (s *ShardServer) checkRange(ids []int32) error {
	n := s.cfg.Store.NumVertices()
	for _, v := range ids {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("cluster: vertex %d out of range [0,%d)", v, n)
		}
	}
	return nil
}

func (s *ShardServer) appendLabels(dst []byte, ids []int32) []byte {
	recs := make([]LabelRecord, 0, len(ids))
	for _, v := range ids {
		rec := LabelRecord{Vertex: v}
		if bits, data, ok := s.cfg.Store.Raw(int(v)); ok {
			rec.Present, rec.Bits, rec.Data = true, bits, data
			s.LabelsServed.Add(1)
		}
		recs = append(recs, rec)
	}
	return AppendLabelResponse(dst, s.cfg.Store.NumVertices(), recs)
}

func (s *ShardServer) errText(err error) string {
	if s.cfg.Name != "" {
		return s.cfg.Name + ": " + err.Error()
	}
	return err.Error()
}

// errShardError wraps an OpError payload received from a shard.
var errShardError = errors.New("cluster: shard error")
