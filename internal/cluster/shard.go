package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"fsdl/internal/labelstore"
)

// ShardConfig configures a ShardServer.
type ShardConfig struct {
	// Store is the shard's partition of the label space (required).
	// The store's vertex space is the global n; NumLabels is just this
	// shard's slice.
	Store *labelstore.Store
	// Name identifies the shard in errors (optional).
	Name string
	// Report, when non-nil, is the salvage report from loading Store
	// via labelstore.LoadPartial. Vertices it lists as corrupt — and,
	// when the file was truncated, every vertex the store lacks — are
	// answered with the "unknown" presence state instead of
	// authoritative absence, so the frontend fails over to an intact
	// replica rather than negative-caching the loss.
	Report *labelstore.SalvageReport
	// Generation is the label generation cfg.Store serves (default 1).
	// Queries tagged with another generation are refused unless the
	// shard still holds that generation's store.
	Generation uint64
	// GenerationRoot, when set, is the directory holding versioned
	// label generations (gen-0000000002/MANIFEST, …) this shard may be
	// told to activate via OpLoadGeneration. The shard loads its own
	// partition file (<Name>.fsdl) from a generation when the manifest
	// lists one, and the full labels.fsdl otherwise.
	GenerationRoot string
	// Bootstrap marks a replacement shard that joined the ring empty
	// (or incomplete) and is awaiting anti-entropy repair: like a
	// truncated salvage, every absent record answers "unknown" instead
	// of authoritative absence, until the repairer verifies the
	// partition complete and seals the shard.
	Bootstrap bool
	// PersistPath, when set, rewrites the partition container (atomic
	// temp+rename) after each repair pull that installed records, so a
	// repaired shard survives its own restart.
	PersistPath string
	// Mmap makes generation activation open FSDL3 partition files via
	// labelstore.Open — served from the OS page cache instead of heap,
	// so the shard's servable store is bounded by disk, not RAM.
	// FSDL1/2 files still load to heap (they have no other mode).
	Mmap bool
	// PersistFormat3 switches PersistPath rewrites (and repair
	// persists) to the FSDL3 container; PersistCompress additionally
	// compresses the record payloads. Mixed-format replicas stay
	// digest- and wire-compatible — records are canonical bytes
	// everywhere above the container.
	PersistFormat3  bool
	PersistCompress bool
	// RepairRate caps how many records per second repair pulls install
	// (default 50000; negative = unlimited). The cap is what keeps
	// rebuilding a shard from starving the query traffic it is already
	// serving.
	RepairRate int
	// RepairDialTimeout bounds dialing the pull source (default 1s);
	// RepairChunkTimeout bounds each pull round trip (default 5s).
	RepairDialTimeout  time.Duration
	RepairChunkTimeout time.Duration
	// FaultHook, when non-nil, is consulted once per received request
	// frame; a non-nil return makes the server drop the connection
	// without replying — the chaos tests' injection point for
	// crash-mid-request behavior.
	FaultHook func(op byte) error
}

// ShardServer serves one partition of a label store over the cluster
// wire protocol: OpGetLabels batches and OpPing health probes. It never
// decodes a label — records ship as stored bytes and the frontend
// decodes locally, which is the whole point of the labeling model.
// Requests on one connection are answered in order; the frontend pools
// connections for parallelism.
type ShardServer struct {
	cfg ShardConfig

	// genMu guards the generation stores. cur is what untagged and
	// current-generation requests are served from; prev is the store a
	// generation swap displaced, kept so gen-tagged scatters that began
	// before the swap still complete. One prior generation of slack is
	// exactly what the frontend's atomic flip needs — by the time a
	// second swap happens, no fetch pinned two generations back can
	// still be in flight.
	genMu sync.RWMutex
	cur   genStore
	prev  genStore

	// salvMu guards the salvage/bootstrap state, which repair now
	// mutates on a live server: installs clear per-vertex loss marks,
	// and a seal clears the whole-store uncertainty.
	salvMu sync.RWMutex
	// salvageLost holds the vertices cfg.Report marked corrupt;
	// salvageTrunc mirrors its Truncated flag (lost vertices unknown);
	// bootstrap mirrors cfg.Bootstrap until the shard is sealed.
	salvageLost  map[int32]struct{}
	salvageTrunc bool
	bootstrap    bool

	// repairMu serializes repair pulls: one transfer at a time keeps
	// the rate limit and the persistence rewrite coherent.
	repairMu sync.Mutex

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// Requests/labelsServed are observability counters for tests and
	// the shard daemon's exit log. RepairInstalled/RepairFailed count
	// records ingested (or not) by OpRepairPull; Sealed flips when the
	// repairer declares the partition complete.
	Requests        atomic.Int64
	LabelsServed    atomic.Int64
	RepairInstalled atomic.Int64
	RepairFailed    atomic.Int64
	Sealed          atomic.Bool
}

// NewShardServer builds a server over cfg.Store.
func NewShardServer(cfg ShardConfig) (*ShardServer, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("cluster: ShardConfig.Store is required")
	}
	if cfg.RepairRate == 0 {
		cfg.RepairRate = 50000
	}
	if cfg.RepairDialTimeout <= 0 {
		cfg.RepairDialTimeout = time.Second
	}
	if cfg.RepairChunkTimeout <= 0 {
		cfg.RepairChunkTimeout = 5 * time.Second
	}
	if cfg.Generation == 0 {
		cfg.Generation = 1
	}
	s := &ShardServer{cfg: cfg, conns: make(map[net.Conn]struct{}), bootstrap: cfg.Bootstrap}
	s.cur = genStore{gen: cfg.Generation, store: cfg.Store}
	if cfg.Report != nil {
		s.salvageTrunc = cfg.Report.Truncated
		s.salvageLost = make(map[int32]struct{}, len(cfg.Report.Corrupt))
		for _, v := range cfg.Report.Corrupt {
			s.salvageLost[v] = struct{}{}
		}
	}
	return s, nil
}

// ListenAndServe listens on addr and serves until Close.
func (s *ShardServer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. A clean Close returns
// nil.
func (s *ShardServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("cluster: shard server already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Addr returns the listening address (nil before Serve).
func (s *ShardServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, severs every open connection, and waits for
// the connection handlers to drain. Safe to call more than once.
func (s *ShardServer) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *ShardServer) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	// scratch buffers reused across requests on this connection.
	bufs := &connBufs{}
	for {
		op, req, err := ReadFrame(br)
		if err != nil {
			// EOF, peer reset, or untrustworthy framing: either way the
			// conversation is over.
			return
		}
		s.Requests.Add(1)
		if s.cfg.FaultHook != nil {
			if err := s.cfg.FaultHook(op); err != nil {
				return
			}
		}
		var werr error
		switch op {
		case OpPing:
			st, gen := s.currentStore()
			bufs.payload = AppendPong(bufs.payload[:0], st.NumVertices(), st.NumLabels(), s.pongFlags(st), gen)
			werr = s.writeFrame(bw, bufs, OpPong, bufs.payload)
		case OpGetLabels:
			st, _ := s.currentStore()
			ids, err := ParseLabelRequest(req)
			if err == nil {
				err = s.checkRange(st, ids)
			}
			if err != nil {
				werr = s.writeFrame(bw, bufs, OpError, []byte(s.errText(err)))
			} else {
				werr = s.writeLabels(bw, bufs, st, ids)
			}
		case OpGetLabelsGen:
			gen, ids, err := ParseGenLabelRequest(req)
			var st *labelstore.Store
			if err == nil {
				st, err = s.storeForGen(gen)
			}
			if err == nil {
				err = s.checkRange(st, ids)
			}
			if err != nil {
				werr = s.writeFrame(bw, bufs, OpError, []byte(s.errText(err)))
			} else {
				werr = s.writeLabels(bw, bufs, st, ids)
			}
		case OpLoadGeneration:
			gen, err := ParseGeneration(req)
			if err == nil {
				err = s.LoadGeneration(gen)
			}
			if err != nil {
				werr = s.writeFrame(bw, bufs, OpError, []byte(s.errText(err)))
			} else {
				bufs.payload = AppendGeneration(bufs.payload[:0], s.Generation())
				werr = s.writeFrame(bw, bufs, OpGenLoaded, bufs.payload)
			}
		case OpAliasGeneration:
			gen, err := ParseGeneration(req)
			if err == nil {
				err = s.AliasGeneration(gen)
			}
			if err != nil {
				werr = s.writeFrame(bw, bufs, OpError, []byte(s.errText(err)))
			} else {
				bufs.payload = AppendGeneration(bufs.payload[:0], s.Generation())
				werr = s.writeFrame(bw, bufs, OpGenLoaded, bufs.payload)
			}
		case OpDigest:
			werr = s.handleDigest(bw, bufs, req)
		case OpRepairPull:
			werr = s.handleRepairPull(bw, bufs, req)
		case OpSeal:
			s.seal()
			werr = s.writeFrame(bw, bufs, OpSealed, nil)
		default:
			werr = s.writeFrame(bw, bufs, OpError, []byte(s.errText(fmt.Errorf("cluster: unknown op %d", op))))
		}
		if werr != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// connBufs are per-connection scratch buffers reused across requests.
type connBufs struct {
	payload, frame []byte
}

// writeFrame frames payload and writes it to bw. An oversized payload
// — impossible by construction, but the process must not die on a
// construction bug — degrades to an OpError the frontend treats as a
// failed attempt, instead of reaching AppendFrame's panic.
func (s *ShardServer) writeFrame(bw *bufio.Writer, bufs *connBufs, op byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return s.writeFrame(bw, bufs, OpError,
			[]byte(s.errText(fmt.Errorf("cluster: response payload %d bytes exceeds frame limit", len(payload)))))
	}
	bufs.frame = AppendFrame(bufs.frame[:0], op, payload)
	_, err := bw.Write(bufs.frame)
	return err
}

// maxLabelChunkPayload bounds one OpLabels/OpLabelsPart payload. It
// sits under MaxFramePayload with headroom for the chunk header, so a
// label response of any total size frames cleanly. A var so tests can
// shrink it to force chunking with small labels.
var maxLabelChunkPayload = MaxFramePayload - 4096

// genStore pairs a label store with the generation it serves.
type genStore struct {
	gen   uint64
	store *labelstore.Store
}

// currentStore returns the store serving the current generation.
func (s *ShardServer) currentStore() (*labelstore.Store, uint64) {
	s.genMu.RLock()
	defer s.genMu.RUnlock()
	return s.cur.store, s.cur.gen
}

// Generation reports the label generation the shard currently serves.
func (s *ShardServer) Generation() uint64 {
	s.genMu.RLock()
	defer s.genMu.RUnlock()
	return s.cur.gen
}

// storeForGen resolves a gen-tagged request to the store serving that
// generation: the current one, or the previous one still held across a
// swap window. Anything else is refused — answering from the wrong
// generation would silently mix label spaces.
func (s *ShardServer) storeForGen(gen uint64) (*labelstore.Store, error) {
	s.genMu.RLock()
	defer s.genMu.RUnlock()
	switch {
	case gen == 0 || gen == s.cur.gen:
		return s.cur.store, nil
	case gen == s.prev.gen && s.prev.store != nil:
		return s.prev.store, nil
	}
	return nil, fmt.Errorf("cluster: generation %d not held (serving %d)", gen, s.cur.gen)
}

// InstallGeneration activates st as label generation gen, displacing
// the current store into the previous-generation slot. The in-process
// path for same-binary clusters and tests; LoadGeneration is the
// on-disk one. A freshly installed generation is complete by
// construction, so salvage and bootstrap uncertainty are cleared.
func (s *ShardServer) InstallGeneration(gen uint64, st *labelstore.Store) error {
	if st == nil {
		return fmt.Errorf("cluster: InstallGeneration: nil store")
	}
	cur, curGen := s.currentStore()
	if gen == curGen {
		return nil
	}
	if st.NumVertices() != cur.NumVertices() {
		return fmt.Errorf("cluster: generation %d serves vertex space %d, shard has %d",
			gen, st.NumVertices(), cur.NumVertices())
	}
	s.genMu.Lock()
	if gen == s.cur.gen {
		s.genMu.Unlock()
		return nil
	}
	s.prev = s.cur
	s.cur = genStore{gen: gen, store: st}
	s.genMu.Unlock()
	s.salvMu.Lock()
	s.salvageTrunc = false
	s.bootstrap = false
	s.salvageLost = nil
	s.salvMu.Unlock()
	return nil
}

// AliasGeneration re-tags the store the shard currently serves as
// generation gen, without loading anything from disk. Only sound when
// the shard's partition is byte-identical in both generations — the
// frontend's scoped swap asserts exactly that (the incremental
// compaction reported the partition untouched, and the new generation
// hard-links the same container file). The current tag is displaced
// into the previous-generation slot like a real load, so gen-pinned
// fetches that raced the swap still resolve. Salvage and bootstrap
// state are deliberately kept: the bytes did not change, so whatever
// uncertainty the store carried, it still carries.
func (s *ShardServer) AliasGeneration(gen uint64) error {
	s.genMu.Lock()
	defer s.genMu.Unlock()
	if gen == s.cur.gen {
		return nil
	}
	if gen < s.cur.gen {
		return fmt.Errorf("cluster: alias to generation %d behind current %d", gen, s.cur.gen)
	}
	s.prev = s.cur
	s.cur = genStore{gen: gen, store: s.cur.store}
	return nil
}

// LoadGeneration activates generation gen from the shard's generation
// root: the generation directory's manifest is read and every listed
// file's checksum verified, then the shard's own partition file
// (<Name>.fsdl) — or the full labels.fsdl when the manifest lists no
// partition for it — is loaded and swapped in.
func (s *ShardServer) LoadGeneration(gen uint64) error {
	if gen == s.Generation() {
		return nil
	}
	if s.cfg.GenerationRoot == "" {
		return fmt.Errorf("cluster: no generation root configured")
	}
	dir := filepath.Join(s.cfg.GenerationRoot, labelstore.GenerationDirName(gen))
	m, err := labelstore.ReadManifestDir(dir)
	if err != nil {
		return fmt.Errorf("cluster: load generation %d: %w", gen, err)
	}
	name := labelstore.GenerationLabelsFile
	if s.cfg.Name != "" && m.File(s.cfg.Name+".fsdl") != nil {
		name = s.cfg.Name + ".fsdl"
	}
	open := labelstore.OpenHeap
	if s.cfg.Mmap {
		// FSDL3 generations map straight from the page cache; the
		// shard serves record slices out of the mapping without ever
		// materialising the container on the heap.
		open = labelstore.Open
	}
	st, err := open(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("cluster: load generation %d: %w", gen, err)
	}
	if err := s.InstallGeneration(gen, st); err != nil {
		return err
	}
	return nil
}

// writeLabels answers one OpGetLabels request, splitting the response
// into as many OpLabelsPart frames as the payload bound requires; the
// final (often only) chunk goes out as OpLabels.
func (s *ShardServer) writeLabels(bw *bufio.Writer, bufs *connBufs, st *labelstore.Store, ids []int32) error {
	// Room for the chunk header: vertex space + record count uvarints.
	const headerSize = 2 * 10 // binary.MaxVarintLen64
	recs := make([]LabelRecord, 0, len(ids))
	size := headerSize
	flush := func(op byte) error {
		bufs.payload = AppendLabelResponse(bufs.payload[:0], st.NumVertices(), recs)
		if err := s.writeFrame(bw, bufs, op, bufs.payload); err != nil {
			return err
		}
		recs = recs[:0]
		size = headerSize
		return nil
	}
	for _, v := range ids {
		rec := s.lookupRecord(st, v)
		rsz := rec.wireSize()
		if headerSize+rsz > maxLabelChunkPayload {
			// A single record that cannot fit any frame: the request as a
			// whole is unanswerable, and saying so beats crashing.
			return s.writeFrame(bw, bufs, OpError,
				[]byte(s.errText(fmt.Errorf("cluster: label of vertex %d too large for one frame", v))))
		}
		if size+rsz > maxLabelChunkPayload {
			if err := flush(OpLabelsPart); err != nil {
				return err
			}
		}
		recs = append(recs, rec)
		size += rsz
	}
	return flush(OpLabels)
}

// lookupRecord resolves one vertex against the store, distinguishing
// authoritative absence from salvage loss and bootstrap incompleteness.
func (s *ShardServer) lookupRecord(st *labelstore.Store, v int32) LabelRecord {
	rec := LabelRecord{Vertex: v}
	if bits, data, ok := st.Raw(int(v)); ok {
		rec.Present, rec.Bits, rec.Data = true, bits, data
		s.LabelsServed.Add(1)
		return rec
	}
	if st.Corrupt(int(v)) {
		// An FSDL3 record whose lazy CRC check failed: the vertex is in
		// the index, so absence is known to be damage, not authority.
		// Answer Unknown and let the frontend fail over to a replica
		// while the digest audit heals the record in place.
		rec.Unknown = true
		return rec
	}
	s.salvMu.RLock()
	defer s.salvMu.RUnlock()
	if s.salvageTrunc || s.bootstrap {
		// A truncated salvage lost an unknowable suffix of the records,
		// and a bootstrap shard has not received its partition yet:
		// nothing such a store lacks can be called authoritatively
		// absent until the repairer seals it.
		rec.Unknown = true
	} else if _, lost := s.salvageLost[v]; lost {
		rec.Unknown = true
	}
	return rec
}

// pongFlags reports the shard's status bits for health probes. A store
// with known-corrupt FSDL3 records is flagged exactly like a salvage
// loss: the repairer's digest audit can still heal it, but until then
// its absences must not be trusted.
func (s *ShardServer) pongFlags(st *labelstore.Store) uint64 {
	s.salvMu.RLock()
	defer s.salvMu.RUnlock()
	var flags uint64
	if s.salvageTrunc || s.bootstrap || len(s.salvageLost) > 0 || st.CorruptCount() > 0 {
		flags |= PongNonAuthoritative
	}
	return flags
}

// seal records the repairer's verdict that this shard's partition is
// complete: absences become authoritative again, and per-vertex salvage
// marks are dropped (anything still missing after a verified repair is
// genuinely not this shard's to hold).
func (s *ShardServer) seal() {
	s.salvMu.Lock()
	s.salvageTrunc = false
	s.bootstrap = false
	s.salvageLost = nil
	s.salvMu.Unlock()
	s.Sealed.Store(true)
}

// maxDigestIDs bounds one OpDigest request so the response (≤ 5 bytes
// per missing id) always fits one frame and a hostile request cannot
// force a huge allocation. The repairer's batches sit far below this.
const maxDigestIDs = 1 << 20

// handleDigest answers OpDigest: the store's digest over the requested
// ids plus the ids it does not hold (see labelstore.DigestVertices for
// why digest equality across replicas means presence equality).
func (s *ShardServer) handleDigest(bw *bufio.Writer, bufs *connBufs, req []byte) error {
	st, _ := s.currentStore()
	ids, err := ParseLabelRequest(req)
	if err == nil && len(ids) > maxDigestIDs {
		err = fmt.Errorf("cluster: digest request names %d ids, limit %d", len(ids), maxDigestIDs)
	}
	if err == nil {
		err = s.checkRange(st, ids)
	}
	if err != nil {
		return s.writeFrame(bw, bufs, OpError, []byte(s.errText(err)))
	}
	digest, present, missing := st.DigestVertices(ids)
	bufs.payload = AppendDigestResponse(bufs.payload[:0], st.NumVertices(), digest, present, missing)
	return s.writeFrame(bw, bufs, OpDigestResp, bufs.payload)
}

// handleRepairPull answers OpRepairPull: pull the named records from
// the source replica, install them, optionally persist, and report the
// tally. The transfer happens synchronously on this connection — the
// repairer sizes batches so one pull stays well under the chunk
// timeout, and other connections keep serving queries meanwhile.
func (s *ShardServer) handleRepairPull(bw *bufio.Writer, bufs *connBufs, req []byte) error {
	source, ids, err := ParseRepairRequest(req)
	if err == nil {
		st, _ := s.currentStore()
		err = s.checkRange(st, ids)
	}
	if err != nil {
		return s.writeFrame(bw, bufs, OpError, []byte(s.errText(err)))
	}
	installed, failed, err := s.repairPull(source, ids)
	if err != nil {
		return s.writeFrame(bw, bufs, OpError, []byte(s.errText(err)))
	}
	bufs.payload = AppendRepairResponse(bufs.payload[:0], installed, failed)
	return s.writeFrame(bw, bufs, OpRepairPulled, bufs.payload)
}

// maxPullChunkIDs is how many records one pull round trip requests.
const maxPullChunkIDs = 4096

// repairPull dials the source shard, fetches the records in chunks and
// installs every present, validated one into the live store. Records
// the source lacks (or that fail validation) count as failed — the
// repairer retries them against another replica on its next sweep.
// Installs are paced to cfg.RepairRate records/sec so a rebuild cannot
// starve query traffic sharing this store.
func (s *ShardServer) repairPull(source string, ids []int32) (installed, failed int, err error) {
	s.repairMu.Lock()
	defer s.repairMu.Unlock()
	// Pin the generation for the whole transfer: the pull request is
	// gen-tagged so a source mid-swap either answers from the matching
	// store or refuses — records from another generation must never be
	// installed here.
	store, gen := s.currentStore()
	conn, err := net.DialTimeout("tcp", source, s.cfg.RepairDialTimeout)
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: dial repair source %s: %w", source, err)
	}
	defer conn.Close()
	start := time.Now()
	for len(ids) > 0 {
		chunk := ids
		if len(chunk) > maxPullChunkIDs {
			chunk = chunk[:maxPullChunkIDs]
		}
		ids = ids[len(chunk):]
		conn.SetDeadline(time.Now().Add(s.cfg.RepairChunkTimeout))
		if werr := WriteFrame(conn, OpGetLabelsGen, AppendGenLabelRequest(nil, gen, chunk)); werr != nil {
			return installed, failed, fmt.Errorf("cluster: repair pull from %s: %w", source, werr)
		}
		frames, rerr := readLabelFrames(conn, len(chunk)+1)
		if rerr != nil {
			return installed, failed, fmt.Errorf("cluster: repair pull from %s: %w", source, rerr)
		}
		got := make(map[int32]LabelRecord, len(chunk))
		for _, fr := range frames {
			n, recs, perr := ParseLabelResponse(fr.payload)
			if perr != nil {
				return installed, failed, fmt.Errorf("cluster: repair pull from %s: %w", source, perr)
			}
			if n != store.NumVertices() {
				return installed, failed, fmt.Errorf("cluster: repair source %s serves vertex space %d, want %d",
					source, n, store.NumVertices())
			}
			for _, r := range recs {
				got[r.Vertex] = r
			}
		}
		for _, v := range chunk {
			rec, ok := got[v]
			if !ok || !rec.Present {
				failed++
				continue
			}
			if perr := store.Put(int(v), rec.Bits, rec.Data); perr != nil {
				failed++
				continue
			}
			installed++
			s.salvMu.Lock()
			delete(s.salvageLost, v)
			s.salvMu.Unlock()
		}
		// Pace to the configured install rate: sleep off any debt the
		// records installed so far have accumulated over real time.
		if s.cfg.RepairRate > 0 {
			owed := time.Duration(installed) * time.Second / time.Duration(s.cfg.RepairRate)
			if ahead := owed - time.Since(start); ahead > 0 {
				time.Sleep(ahead)
			}
		}
	}
	s.RepairInstalled.Add(int64(installed))
	s.RepairFailed.Add(int64(failed))
	if installed > 0 && s.cfg.PersistPath != "" {
		if perr := s.persist(); perr != nil {
			return installed, failed, perr
		}
	}
	return installed, failed, nil
}

// readLabelFrames reads one label response off conn: OpLabelsPart
// continuations closed by a final OpLabels, mirroring the frontend's
// round trip. An OpError frame becomes an error.
func readLabelFrames(conn net.Conn, maxFrames int) ([]wireFrame, error) {
	var frames []wireFrame
	for {
		op, p, err := ReadFrame(conn)
		if err != nil {
			return nil, err
		}
		switch op {
		case OpLabels:
			return append(frames, wireFrame{op: op, payload: p}), nil
		case OpLabelsPart:
			frames = append(frames, wireFrame{op: op, payload: p})
			if len(frames) >= maxFrames {
				return nil, fmt.Errorf("cluster: repair response exceeded %d frames", maxFrames)
			}
		case OpError:
			return nil, fmt.Errorf("%w: %s", errShardError, p)
		default:
			return nil, fmt.Errorf("cluster: unexpected repair response op %d", op)
		}
	}
}

// persist rewrites the partition container atomically (temp file in
// the same directory, fsync, rename) so a repaired shard that restarts
// reloads what repair gave it instead of starting the loss over.
func (s *ShardServer) persist() error {
	dir := filepath.Dir(s.cfg.PersistPath)
	tmp, err := os.CreateTemp(dir, ".fsdl-shard-*")
	if err != nil {
		return fmt.Errorf("cluster: persist repair: %w", err)
	}
	defer os.Remove(tmp.Name())
	store, _ := s.currentStore()
	if s.cfg.PersistFormat3 {
		err = store.SaveVerticesFormat3(tmp, store.Vertices(), s.cfg.PersistCompress)
	} else {
		err = store.Save(tmp)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: persist repair: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: persist repair: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cluster: persist repair: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.cfg.PersistPath); err != nil {
		return fmt.Errorf("cluster: persist repair: %w", err)
	}
	if err := labelstore.FsyncParentDir(s.cfg.PersistPath); err != nil {
		return fmt.Errorf("cluster: persist repair: %w", err)
	}
	return nil
}

// checkRange rejects requests naming vertices outside the store's
// vertex space — those are caller bugs, not absent records, and a
// response record could not even encode them.
func (s *ShardServer) checkRange(st *labelstore.Store, ids []int32) error {
	n := st.NumVertices()
	for _, v := range ids {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("cluster: vertex %d out of range [0,%d)", v, n)
		}
	}
	return nil
}

func (s *ShardServer) errText(err error) string {
	if s.cfg.Name != "" {
		return s.cfg.Name + ": " + err.Error()
	}
	return err.Error()
}

// errShardError wraps an OpError payload received from a shard.
var errShardError = errors.New("cluster: shard error")
