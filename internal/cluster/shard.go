package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"fsdl/internal/labelstore"
)

// ShardConfig configures a ShardServer.
type ShardConfig struct {
	// Store is the shard's partition of the label space (required).
	// The store's vertex space is the global n; NumLabels is just this
	// shard's slice.
	Store *labelstore.Store
	// Name identifies the shard in errors (optional).
	Name string
	// Report, when non-nil, is the salvage report from loading Store
	// via labelstore.LoadPartial. Vertices it lists as corrupt — and,
	// when the file was truncated, every vertex the store lacks — are
	// answered with the "unknown" presence state instead of
	// authoritative absence, so the frontend fails over to an intact
	// replica rather than negative-caching the loss.
	Report *labelstore.SalvageReport
	// FaultHook, when non-nil, is consulted once per received request
	// frame; a non-nil return makes the server drop the connection
	// without replying — the chaos tests' injection point for
	// crash-mid-request behavior.
	FaultHook func(op byte) error
}

// ShardServer serves one partition of a label store over the cluster
// wire protocol: OpGetLabels batches and OpPing health probes. It never
// decodes a label — records ship as stored bytes and the frontend
// decodes locally, which is the whole point of the labeling model.
// Requests on one connection are answered in order; the frontend pools
// connections for parallelism.
type ShardServer struct {
	cfg ShardConfig

	// salvageLost holds the vertices cfg.Report marked corrupt;
	// salvageTrunc mirrors its Truncated flag (lost vertices unknown).
	salvageLost  map[int32]struct{}
	salvageTrunc bool

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// Requests/labelsServed are observability counters for tests and
	// the shard daemon's exit log.
	Requests     atomic.Int64
	LabelsServed atomic.Int64
}

// NewShardServer builds a server over cfg.Store.
func NewShardServer(cfg ShardConfig) (*ShardServer, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("cluster: ShardConfig.Store is required")
	}
	s := &ShardServer{cfg: cfg, conns: make(map[net.Conn]struct{})}
	if cfg.Report != nil {
		s.salvageTrunc = cfg.Report.Truncated
		s.salvageLost = make(map[int32]struct{}, len(cfg.Report.Corrupt))
		for _, v := range cfg.Report.Corrupt {
			s.salvageLost[v] = struct{}{}
		}
	}
	return s, nil
}

// ListenAndServe listens on addr and serves until Close.
func (s *ShardServer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. A clean Close returns
// nil.
func (s *ShardServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("cluster: shard server already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Addr returns the listening address (nil before Serve).
func (s *ShardServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, severs every open connection, and waits for
// the connection handlers to drain. Safe to call more than once.
func (s *ShardServer) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *ShardServer) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	// scratch buffers reused across requests on this connection.
	bufs := &connBufs{}
	for {
		op, req, err := ReadFrame(br)
		if err != nil {
			// EOF, peer reset, or untrustworthy framing: either way the
			// conversation is over.
			return
		}
		s.Requests.Add(1)
		if s.cfg.FaultHook != nil {
			if err := s.cfg.FaultHook(op); err != nil {
				return
			}
		}
		var werr error
		switch op {
		case OpPing:
			bufs.payload = AppendPong(bufs.payload[:0], s.cfg.Store.NumVertices(), s.cfg.Store.NumLabels())
			werr = s.writeFrame(bw, bufs, OpPong, bufs.payload)
		case OpGetLabels:
			ids, err := ParseLabelRequest(req)
			if err == nil {
				err = s.checkRange(ids)
			}
			if err != nil {
				werr = s.writeFrame(bw, bufs, OpError, []byte(s.errText(err)))
			} else {
				werr = s.writeLabels(bw, bufs, ids)
			}
		default:
			werr = s.writeFrame(bw, bufs, OpError, []byte(s.errText(fmt.Errorf("cluster: unknown op %d", op))))
		}
		if werr != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// connBufs are per-connection scratch buffers reused across requests.
type connBufs struct {
	payload, frame []byte
}

// writeFrame frames payload and writes it to bw. An oversized payload
// — impossible by construction, but the process must not die on a
// construction bug — degrades to an OpError the frontend treats as a
// failed attempt, instead of reaching AppendFrame's panic.
func (s *ShardServer) writeFrame(bw *bufio.Writer, bufs *connBufs, op byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return s.writeFrame(bw, bufs, OpError,
			[]byte(s.errText(fmt.Errorf("cluster: response payload %d bytes exceeds frame limit", len(payload)))))
	}
	bufs.frame = AppendFrame(bufs.frame[:0], op, payload)
	_, err := bw.Write(bufs.frame)
	return err
}

// maxLabelChunkPayload bounds one OpLabels/OpLabelsPart payload. It
// sits under MaxFramePayload with headroom for the chunk header, so a
// label response of any total size frames cleanly. A var so tests can
// shrink it to force chunking with small labels.
var maxLabelChunkPayload = MaxFramePayload - 4096

// writeLabels answers one OpGetLabels request, splitting the response
// into as many OpLabelsPart frames as the payload bound requires; the
// final (often only) chunk goes out as OpLabels.
func (s *ShardServer) writeLabels(bw *bufio.Writer, bufs *connBufs, ids []int32) error {
	// Room for the chunk header: vertex space + record count uvarints.
	const headerSize = 2 * 10 // binary.MaxVarintLen64
	recs := make([]LabelRecord, 0, len(ids))
	size := headerSize
	flush := func(op byte) error {
		bufs.payload = AppendLabelResponse(bufs.payload[:0], s.cfg.Store.NumVertices(), recs)
		if err := s.writeFrame(bw, bufs, op, bufs.payload); err != nil {
			return err
		}
		recs = recs[:0]
		size = headerSize
		return nil
	}
	for _, v := range ids {
		rec := s.lookupRecord(v)
		rsz := rec.wireSize()
		if headerSize+rsz > maxLabelChunkPayload {
			// A single record that cannot fit any frame: the request as a
			// whole is unanswerable, and saying so beats crashing.
			return s.writeFrame(bw, bufs, OpError,
				[]byte(s.errText(fmt.Errorf("cluster: label of vertex %d too large for one frame", v))))
		}
		if size+rsz > maxLabelChunkPayload {
			if err := flush(OpLabelsPart); err != nil {
				return err
			}
		}
		recs = append(recs, rec)
		size += rsz
	}
	return flush(OpLabels)
}

// lookupRecord resolves one vertex against the store, distinguishing
// authoritative absence from salvage loss.
func (s *ShardServer) lookupRecord(v int32) LabelRecord {
	rec := LabelRecord{Vertex: v}
	if bits, data, ok := s.cfg.Store.Raw(int(v)); ok {
		rec.Present, rec.Bits, rec.Data = true, bits, data
		s.LabelsServed.Add(1)
		return rec
	}
	if s.salvageTrunc {
		// The framing break lost an unknowable suffix of the records:
		// nothing this store lacks can be called authoritatively absent.
		rec.Unknown = true
	} else if _, lost := s.salvageLost[v]; lost {
		rec.Unknown = true
	}
	return rec
}

// checkRange rejects requests naming vertices outside the store's
// vertex space — those are caller bugs, not absent records, and a
// response record could not even encode them.
func (s *ShardServer) checkRange(ids []int32) error {
	n := s.cfg.Store.NumVertices()
	for _, v := range ids {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("cluster: vertex %d out of range [0,%d)", v, n)
		}
	}
	return nil
}

func (s *ShardServer) errText(err error) string {
	if s.cfg.Name != "" {
		return s.cfg.Name + ": " + err.Error()
	}
	return err.Error()
}

// errShardError wraps an OpError payload received from a shard.
var errShardError = errors.New("cluster: shard error")
