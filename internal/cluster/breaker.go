package cluster

import (
	"sync"
	"time"

	"fsdl/internal/backoff"
)

// BreakerState is a circuit breaker's position: Closed passes traffic,
// Open sheds it, HalfOpen lets one probe through to test recovery.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerConfig tunes one shard's circuit breaker (populated from
// FrontendConfig defaults).
type breakerConfig struct {
	// window is the rolling failure window, sliced into buckets.
	window  time.Duration
	buckets int
	// minRequests is the sample floor before the ratio can trip the
	// breaker — three failures out of three at startup is not a brown-out.
	minRequests int
	// failureRatio over the window at or above which the breaker opens.
	failureRatio float64
	// cooldown is the open→half-open wait; consecutive re-opens back it
	// off exponentially up to maxCooldown.
	cooldown    time.Duration
	maxCooldown time.Duration
}

// breaker is a per-shard circuit breaker over fetch outcomes. The
// health sweep catches a shard that is *down* (pings fail); the breaker
// catches one that is *sick* — answering pings but failing or timing
// out fetches — and routes around it before passive failover amplifies
// the brown-out into a retry storm. All methods take an explicit clock
// so tests drive the state machine without sleeping.
type breaker struct {
	cfg breakerConfig

	mu          sync.Mutex
	state       BreakerState
	buckets     []breakerBucket
	cur         int
	bucketStart time.Time
	openedAt    time.Time
	trips       int  // consecutive opens without a close between them
	probing     bool // a half-open probe is in flight
	opens       int64
}

type breakerBucket struct{ ok, fail int64 }

func newBreaker(cfg breakerConfig) *breaker {
	return &breaker{cfg: cfg, buckets: make([]breakerBucket, cfg.buckets)}
}

// allow reports whether a fetch may be routed to this shard right now.
// In the open state it flips to half-open once the cooldown has passed,
// claiming the single probe slot for the caller; in half-open only that
// probe is allowed.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.cooldownLocked() {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open
		if !b.probing {
			b.probing = true
			return true
		}
		return false
	}
}

// record feeds one fetch outcome into the window and drives the state
// machine: a half-open probe's outcome closes or re-opens the breaker,
// and any success observed while open (the last-resort fallback path
// leaks a request through when every owner is dark) closes it
// immediately — the shard has proven itself faster than the probe
// schedule would have.
func (b *breaker) record(now time.Time, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.closeLocked()
		} else {
			b.tripLocked(now)
		}
		return
	case BreakerOpen:
		if ok {
			b.closeLocked()
		}
		return
	}
	b.advance(now)
	if ok {
		b.buckets[b.cur].ok++
		return
	}
	b.buckets[b.cur].fail++
	var oks, fails int64
	for _, bk := range b.buckets {
		oks += bk.ok
		fails += bk.fail
	}
	total := oks + fails
	if total >= int64(b.cfg.minRequests) &&
		float64(fails) >= b.cfg.failureRatio*float64(total) {
		b.trips = 0 // fresh incident, not a failed probe
		b.tripLocked(now)
	}
}

// snapshot returns the state without side effects.
func (b *breaker) snapshot() (BreakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}

func (b *breaker) tripLocked(now time.Time) {
	b.state = BreakerOpen
	b.openedAt = now
	b.trips++
	b.opens++
	b.probing = false
}

func (b *breaker) closeLocked() {
	b.state = BreakerClosed
	b.trips = 0
	b.probing = false
	for i := range b.buckets {
		b.buckets[i] = breakerBucket{}
	}
}

// cooldownLocked is the current open→half-open wait: the base cooldown
// backed off by the consecutive-trip count, capped.
func (b *breaker) cooldownLocked() time.Duration {
	pol := backoff.Policy{Base: b.cfg.cooldown, Cap: b.cfg.maxCooldown}
	return pol.Delay(b.trips - 1)
}

// advance rotates the bucket ring forward to cover now, zeroing the
// buckets whose time has passed out of the window.
func (b *breaker) advance(now time.Time) {
	per := b.cfg.window / time.Duration(len(b.buckets))
	if per <= 0 {
		per = time.Second
	}
	if b.bucketStart.IsZero() {
		b.bucketStart = now
		return
	}
	steps := int(now.Sub(b.bucketStart) / per)
	if steps <= 0 {
		return
	}
	if steps >= len(b.buckets) {
		for i := range b.buckets {
			b.buckets[i] = breakerBucket{}
		}
		b.cur = 0
		b.bucketStart = now
		return
	}
	for i := 0; i < steps; i++ {
		b.cur = (b.cur + 1) % len(b.buckets)
		b.buckets[b.cur] = breakerBucket{}
	}
	b.bucketStart = b.bucketStart.Add(time.Duration(steps) * per)
}

// retryBudget is the frontend-wide token bucket that caps retries and
// hedges to a fraction of first-attempt traffic (the SRE "retry
// budget"): every first attempt earns ratio tokens, every retry or
// hedge spends one, so however hard a shard browns out, amplified
// traffic stays at ≤ ratio of the offered load (plus a small burst
// allowance for quiet periods).
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	ratio  float64
}

func newRetryBudget(ratio, burst float64) *retryBudget {
	// Start full: the first incident after a deploy gets the burst.
	return &retryBudget{tokens: burst, burst: burst, ratio: ratio}
}

// earn credits one first-attempt fetch.
func (b *retryBudget) earn() {
	b.mu.Lock()
	b.tokens = min(b.tokens+b.ratio, b.burst)
	b.mu.Unlock()
}

// spend takes one token for a retry or hedge, reporting false (deny)
// when the budget is exhausted.
func (b *retryBudget) spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// level reports the current token count (a metrics gauge).
func (b *retryBudget) level() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
