package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"fsdl/internal/faultinject"
	"fsdl/internal/graph"
	"fsdl/internal/labelstore"
	"fsdl/internal/server"
)

// startExtraShard spins up one more shard server (outside startCluster)
// and returns its address.
func startExtraShard(t testing.TB, cfg ShardConfig) (*ShardServer, string) {
	t.Helper()
	srv, err := NewShardServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// TestBreakerOpensOnSickShard: a shard that answers pings but fails
// every fetch (sick, not down) must trip its breaker within the rolling
// window, after which traffic routes straight to the replica — and the
// retries spent getting there stay within the budget.
func TestBreakerOpensOnSickShard(t *testing.T) {
	_, st := buildFullStore(t, 8)
	const sick = 1
	hooks := map[int]func(byte) error{
		sick: func(op byte) error {
			if op == OpGetLabels || op == OpGetLabelsGen {
				return errors.New("injected brown-out")
			}
			return nil // pings stay healthy: the health sweep won't save us
		},
	}
	tc := startCluster(t, st, 3, 2, hooks)
	f := newTestFrontend(t, tc, func(cfg *FrontendConfig) {
		cfg.LabelCacheSize = -1 // every Label goes to the wire
		cfg.HedgeDelay = -1     // isolate the retry path from hedging noise
		cfg.FetchTimeout = 300 * time.Millisecond
		cfg.BreakerWindow = 2 * time.Second
		cfg.BreakerMinRequests = 4
		cfg.BreakerCooldown = time.Minute // stays open for the whole test
	})
	ctx := context.Background()

	// Hammer until the breaker opens. Every fetch that lands on the sick
	// shard fails and fails over, feeding the breaker window.
	deadline := time.Now().Add(5 * time.Second)
	opened := false
	for !opened {
		for v := 0; v < st.NumVertices(); v++ {
			if _, err := f.Label(ctx, v); err != nil {
				// Budget denials fail fast by design; only unexpected errors
				// are fatal here.
				if !strings.Contains(err.Error(), "replicas unreachable") {
					t.Fatalf("Label(%d): %v", v, err)
				}
			}
		}
		for _, h := range f.Health() {
			if h.Name == "shard1" && h.Breaker == "open" {
				opened = true
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened on the 100%%-error shard; health: %+v", f.Health())
		}
	}

	// Open breaker sheds traffic: the sick shard sees (almost) no new
	// fetches while its replica keeps answering everything.
	sickClient := f.state.Load().clientByName("shard1")
	before := sickClient.fetches.Load()
	for v := 0; v < st.NumVertices(); v++ {
		if _, err := f.Label(ctx, v); err != nil {
			t.Fatalf("Label(%d) with breaker open: %v", v, err)
		}
	}
	if after := sickClient.fetches.Load(); after != before {
		t.Fatalf("open breaker leaked %d fetches to the sick shard", after-before)
	}

	// Retries + hedges stayed within the budget invariant:
	// spent ≤ ratio·first-attempts + burst.
	first := f.met.labelMisses.Load()
	spent := f.met.budgetSpent.Load()
	if limit := int64(0.1*float64(first)) + 50 + 1; spent > limit {
		t.Fatalf("budget spent %d retries over %d first attempts, cap is %d", spent, first, limit)
	}

	// The whole incident is visible in /metrics.
	var sb strings.Builder
	f.WriteMetrics(&sb)
	for _, want := range []string{
		`fsdl_cluster_breaker_state{shard="shard1"} 1`,
		`fsdl_cluster_breaker_opens_total{shard="shard1"} 1`,
		"fsdl_cluster_retry_budget_tokens",
		"fsdl_cluster_retries_total",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("metrics exposition missing %q", want)
		}
	}
}

// TestRetryBudgetFailsFastWhenExhausted: with a tiny budget and a shard
// failing every fetch, retry denial must surface as a fast unavailable
// error (the chain is abandoned) and be counted, instead of retrying
// unboundedly.
func TestRetryBudgetFailsFastWhenExhausted(t *testing.T) {
	_, st := buildFullStore(t, 8)
	const sick = 0
	hooks := map[int]func(byte) error{
		sick: func(op byte) error {
			if op == OpGetLabels || op == OpGetLabelsGen {
				return errors.New("injected brown-out")
			}
			return nil
		},
	}
	tc := startCluster(t, st, 3, 2, hooks)
	f := newTestFrontend(t, tc, func(cfg *FrontendConfig) {
		cfg.LabelCacheSize = -1
		cfg.HedgeDelay = -1
		cfg.FetchTimeout = 300 * time.Millisecond
		cfg.BreakerDisabled = true // nothing routes around the sick shard
		cfg.RetryBudgetRatio = 0.01
		cfg.RetryBudgetBurst = 1
	})
	ctx := context.Background()

	// One batched scatter: every id whose first owner is the sick shard
	// fails together, and the relaunch wants one retry token per id —
	// far more than the bucket holds. All but the first must be denied
	// and fail fast instead of retrying unboundedly.
	ids := make([]int, st.NumVertices())
	for v := range ids {
		ids[v] = v
	}
	unresolved := f.Prefetch(ctx, ids)
	if unresolved == 0 {
		t.Fatal("every id resolved though the budget cannot cover the retries")
	}
	if f.met.budgetDenied.Load() == 0 {
		t.Fatal("budget denial not counted")
	}
	if spent := f.met.budgetSpent.Load(); spent > 3 {
		t.Fatalf("budget spent %d tokens with burst 1 + crumbs; bucket is leaking", spent)
	}
	// The denied ids surface as unavailable on the per-label path, not
	// as absent labels: nothing may leak into the negative cache.
	for _, v := range ids {
		if _, err := f.Label(ctx, v); err != nil &&
			strings.Contains(err.Error(), "no label for vertex") {
			t.Fatalf("Label(%d): budget denial misreported as absence: %v", v, err)
		}
	}
	if f.met.negHits.Load() != 0 {
		t.Fatal("budget denials polluted the negative cache")
	}
}

// TestSelfHealingDeadShardReplacement is the end-to-end self-healing
// drill from the runbook: with R=2, one replica dies permanently
// mid-workload (a faultinject schedule with RestartAt=Never); a fresh
// bootstrap-empty shard joins drained, the dead shard leaves, and
// anti-entropy repair fills the replacement from the surviving replicas
// while a querying client sees zero errors and every answer stays an
// upper bound on d_{G\F}. Once repair converges the replacement is
// sealed and undrained, and answers are exact again.
func TestSelfHealingDeadShardReplacement(t *testing.T) {
	g, st := buildFullStore(t, 8)
	n := st.NumVertices()

	names := []Node{{Name: "shard0"}, {Name: "shard1"}, {Name: "shard2"}}
	ring := NewRing(names, 2)
	parts := ring.Partition(n)

	shards := make([]*restartableShard, 3)
	membership := &Membership{Replication: 2}
	for i := range shards {
		var buf bytes.Buffer
		if err := st.SaveVertices(&buf, parts[i]); err != nil {
			t.Fatal(err)
		}
		ps, err := labelstore.Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = &restartableShard{store: ps, name: names[i].Name, addr: "127.0.0.1:0"}
		shards[i].start(t)
		membership.Nodes = append(membership.Nodes, Node{Name: names[i].Name, Addr: shards[i].addr})
	}
	t.Cleanup(func() {
		for _, sh := range shards {
			sh.stop()
		}
	})

	fe := newTestFrontend(t, &testCluster{membership: membership}, func(cfg *FrontendConfig) {
		cfg.FetchTimeout = 400 * time.Millisecond
		cfg.HedgeDelay = -1 // keep routing deterministic during the drill
		cfg.LabelCacheSize = -1
		cfg.HealthInterval = 25 * time.Millisecond
		cfg.RepairInterval = 100 * time.Millisecond
		cfg.RetryBudgetBurst = 500 // the drill itself must not starve retries
	})
	srv, err := server.New(server.Config{Source: fe, CacheCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}

	// The kill schedule: shard1 dies at step 2 and never comes back.
	const victim = 1
	inj, err := faultinject.NewInjector(faultinject.Plan{Crashes: []faultinject.Crash{
		{Router: victim, At: 2, RestartAt: faultinject.Never},
	}}, len(shards))
	if err != nil {
		t.Fatal(err)
	}

	// The workload: distance queries with a fault set, checked against
	// ground truth every step.
	faults := graph.NewFaultSet()
	faults.AddVertex(n / 2)
	pairs := [][2]int{{0, n - 1}, {1, n - 2}, {7, n - 9}}
	trueDist := make([]int32, len(pairs))
	for i, p := range pairs {
		trueDist[i] = g.DistAvoiding(p[0], p[1], faults)
	}
	ctx := context.Background()
	queryStep := func(step string, wantExact bool) {
		t.Helper()
		answers, err := srv.AnswerPairs(ctx, pairs, &server.QueryOptions{Faults: faults})
		if err != nil {
			t.Fatalf("%s: AnswerPairs: %v", step, err)
		}
		for i, a := range answers {
			if a.Error != "" {
				t.Fatalf("%s pair %v errored: %s", step, pairs[i], a.Error)
			}
			if a.Connected && int32(a.Dist) < trueDist[i] {
				t.Fatalf("%s pair %v: answer %d below true distance %d", step, pairs[i], a.Dist, trueDist[i])
			}
			if wantExact && !a.Exact {
				t.Fatalf("%s pair %v: answer not exact (degraded=%v)", step, pairs[i], a.Degraded)
			}
		}
	}

	// Steps 0–1: healthy cluster, exact answers.
	for now := int64(0); now < 2; now++ {
		queryStep(fmt.Sprintf("step %d", now), true)
	}

	// Step 2: the victim dies permanently. R=2 keeps everything served
	// by the surviving replica — zero errors, still exact.
	if !inj.CrashedAt(2, victim) {
		t.Fatal("kill schedule did not fire")
	}
	shards[victim].stop()
	time.Sleep(100 * time.Millisecond) // let a failed fetch / sweep notice
	queryStep("step 2 (outage)", true)

	// Step 3: the runbook. Join the empty replacement drained (so no
	// query traffic lands on it while it is a shell), remove the corpse.
	_, replAddr := startExtraShard(t, ShardConfig{
		Store: mustEmptyStore(t, n), Name: "shard3", Bootstrap: true,
	})
	if _, err := fe.Join("shard3", replAddr); err != nil {
		t.Fatalf("join replacement: %v", err)
	}
	if _, err := fe.Drain("shard3", true); err != nil {
		t.Fatalf("drain replacement: %v", err)
	}
	if _, err := fe.Leave("shard1"); err != nil {
		t.Fatalf("leave dead shard: %v", err)
	}
	if got := fe.Epoch(); got != 4 {
		t.Fatalf("epoch %d after join+drain+leave, want 4", got)
	}
	queryStep("step 3 (replacement joined)", false)

	// Repair fills the replacement from the survivors; poll for digest
	// convergence and the seal that restores the replacement's authority
	// over absences. The client keeps querying throughout — zero errors.
	// (The non-authoritative bit is re-read from pongs, so give a stale
	// in-flight probe a beat to settle rather than asserting instantly.)
	deadline := time.Now().Add(15 * time.Second)
	var cs ClusterStatus
	for {
		queryStep("during repair", false)
		cs = fe.Status()
		healed := cs.Repair.Converged && cs.Repair.Backlog == 0 && cs.Repair.Sealed > 0
		for _, h := range cs.Shards {
			if h.Name == "shard3" && h.NonAuthoritative {
				healed = false
			}
		}
		if healed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("repair never converged and sealed: %+v shards %+v", cs.Repair, cs.Shards)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if cs.Repair.Repaired == 0 {
		t.Fatal("repair converged without installing any records on the empty shard")
	}

	// Undrain: the replacement takes query traffic, and answers are
	// exact end to end again.
	if _, err := fe.Drain("shard3", false); err != nil {
		t.Fatalf("undrain replacement: %v", err)
	}
	queryStep("after undrain", true)

	// The replacement really serves: route every vertex once and check
	// it fielded fetches without a single unknown-hint regression.
	repl := fe.state.Load().clientByName("shard3")
	before := repl.fetches.Load()
	for v := 0; v < n; v++ {
		if _, err := fe.Label(ctx, v); err != nil {
			t.Fatalf("Label(%d) after heal: %v", v, err)
		}
	}
	if repl.fetches.Load() == before {
		t.Fatal("healed replacement fielded no fetches; it owns nothing?")
	}
	if cs := fe.Status(); !cs.Repair.Converged {
		t.Fatalf("cluster fell out of convergence after undrain: %+v", cs.Repair)
	}
}

func mustEmptyStore(t testing.TB, n int) *labelstore.Store {
	t.Helper()
	st, err := labelstore.NewEmpty(n)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
