// Package cluster is the horizontal tier of the serving stack: label
// storage partitioned across shard nodes by a consistent-hash ring over
// vertex ids, with replication, while the forbidden-set decode stays
// local to the frontend. This split is exactly what the paper's labeling
// model promises — a query (s, t, F) needs only the labels of s, t and
// the faults, so a frontend can scatter-gather those few label records
// from whichever machines own them and run the decoder on its own CPU.
//
// Three pieces:
//
//   - A compact length-prefixed, CRC-checked TCP wire protocol (wire.go)
//     for fetching encoded label records in batches.
//   - A ShardServer (shard.go) serving the vertex-partition of a label
//     store produced by `fsdl partition`.
//   - A Frontend (frontend.go) that resolves {s, t} ∪ F to shard owners
//     via the ring (ring.go), fetches concurrently with per-call
//     deadlines, hedges slow calls to replicas, fails over when health
//     checks mark a node down, and caches decoded labels (and confirmed
//     absences) in sharded LRUs.
//
// Failure semantics follow the PR 1 degraded-query contract: when every
// replica of a fault label is unreachable, the frontend demotes that
// fault to the degraded tier (maximal protected ball) and the answer
// stays a conservative upper bound on d_{G\F}, flagged exact:false.
// Unreachable *endpoint* labels are hard errors — without them nothing
// can be answered. See docs/CLUSTER.md.
package cluster
