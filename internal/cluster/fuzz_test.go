package cluster

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at the wire-frame decoder and
// the payload codecs behind it — the shard/frontend boundary parses
// these straight off a TCP socket, so, like DecodeRouteHeader, they must
// never panic, never allocate from an attacker-chosen length field, and
// must round-trip everything they accept.
func FuzzDecodeFrame(f *testing.F) {
	// Well-formed seeds for every op.
	f.Add(AppendFrame(nil, OpGetLabels, AppendLabelRequest(nil, []int32{0, 5, 99})))
	f.Add(AppendFrame(nil, OpLabels, AppendLabelResponse(nil, 100, []LabelRecord{
		{Vertex: 5, Present: true, Bits: 19, Data: []byte{1, 2, 3}},
		{Vertex: 7},
		{Vertex: 9, Unknown: true},
	})))
	f.Add(AppendFrame(nil, OpLabelsPart, AppendLabelResponse(nil, 100, []LabelRecord{
		{Vertex: 1, Present: true, Bits: 8, Data: []byte{0xaa}},
	})))
	f.Add(AppendFrame(nil, OpPing, nil))
	f.Add(AppendFrame(nil, OpPong, AppendPong(nil, 256, 86, 0, 1)))
	f.Add(AppendFrame(nil, OpPong, AppendPong(nil, 256, 0, PongNonAuthoritative, 7)))
	f.Add(AppendFrame(nil, OpGetLabelsGen, AppendGenLabelRequest(nil, 3, []int32{0, 5, 99})))
	f.Add(AppendFrame(nil, OpLoadGeneration, AppendGeneration(nil, 4)))
	f.Add(AppendFrame(nil, OpGenLoaded, AppendGeneration(nil, 4)))
	f.Add(AppendFrame(nil, OpError, []byte("shard: boom")))
	f.Add(AppendFrame(nil, OpDigest, AppendLabelRequest(nil, []int32{3, 4, 5})))
	f.Add(AppendFrame(nil, OpDigestResp, AppendDigestResponse(nil, 100, 0xdeadbeef, 2, []int32{4})))
	f.Add(AppendFrame(nil, OpRepairPull, AppendRepairRequest(nil, "127.0.0.1:9001", []int32{4, 7})))
	f.Add(AppendFrame(nil, OpRepairPulled, AppendRepairResponse(nil, 2, 0)))
	f.Add(AppendFrame(nil, OpSeal, nil))
	f.Add(AppendFrame(nil, OpSealed, nil))
	// Two frames back to back (rest must parse too).
	two := AppendFrame(nil, OpPing, nil)
	f.Add(AppendFrame(two, OpPong, AppendPong(nil, 9, 9, 0, 2)))
	// Degenerate and adversarial seeds.
	f.Add([]byte{})
	f.Add([]byte{frameMagic0, frameMagic1, frameVer, OpLabels, 0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		op, payload, rest, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if len(payload) > len(data) || len(rest) > len(data) {
			t.Fatalf("decoded slices exceed input: payload=%d rest=%d from %d bytes",
				len(payload), len(rest), len(data))
		}
		// An accepted frame re-encodes byte-identically.
		enc := AppendFrame(nil, op, payload)
		if !bytes.Equal(enc, data[:len(data)-len(rest)]) {
			t.Fatalf("frame does not round-trip: %d vs %d bytes", len(enc), len(data)-len(rest))
		}
		// ReadFrame agrees with DecodeFrame on the same bytes.
		rop, rpayload, rerr := ReadFrame(bytes.NewReader(data))
		if rerr != nil || rop != op || !bytes.Equal(rpayload, payload) {
			t.Fatalf("ReadFrame disagrees with DecodeFrame: op %d vs %d, err %v", rop, op, rerr)
		}
		// Accepted payloads reach a fixed point through their op's codec:
		// parse → encode → parse must reproduce the encoding exactly.
		// (Byte-equality with the *input* is not required — varints admit
		// non-canonical encodings the parser tolerates but never emits.)
		switch op {
		case OpGetLabels:
			ids, err := ParseLabelRequest(payload)
			if err != nil {
				return
			}
			if len(ids) > len(payload) {
				t.Fatalf("%d ids decoded from %d payload bytes", len(ids), len(payload))
			}
			enc := AppendLabelRequest(nil, ids)
			ids2, err := ParseLabelRequest(enc)
			if err != nil {
				t.Fatalf("re-parse of accepted label request failed: %v", err)
			}
			if !bytes.Equal(AppendLabelRequest(nil, ids2), enc) {
				t.Fatal("label request does not round-trip")
			}
		case OpLabels, OpLabelsPart:
			n, recs, err := ParseLabelResponse(payload)
			if err != nil {
				return
			}
			if len(recs) > len(payload) {
				t.Fatalf("%d records decoded from %d payload bytes", len(recs), len(payload))
			}
			for _, r := range recs {
				if len(r.Data) > len(payload) {
					t.Fatalf("record data %d bytes exceeds payload %d", len(r.Data), len(payload))
				}
			}
			enc := AppendLabelResponse(nil, n, recs)
			n2, recs2, err := ParseLabelResponse(enc)
			if err != nil {
				t.Fatalf("re-parse of accepted label response failed: %v", err)
			}
			if !bytes.Equal(AppendLabelResponse(nil, n2, recs2), enc) {
				t.Fatal("label response does not round-trip")
			}
		case OpPong:
			n, labels, flags, gen, err := ParsePong(payload)
			if err != nil {
				return
			}
			enc := AppendPong(nil, n, labels, flags, gen)
			n2, l2, fl2, g2, err := ParsePong(enc)
			if err != nil || n2 != n || l2 != labels || fl2 != flags || g2 != gen {
				t.Fatalf("pong does not round-trip: %d/%d/%d/%d vs %d/%d/%d/%d, err %v", n2, l2, fl2, g2, n, labels, flags, gen, err)
			}
		case OpGetLabelsGen:
			gen, ids, err := ParseGenLabelRequest(payload)
			if err != nil {
				return
			}
			enc := AppendGenLabelRequest(nil, gen, ids)
			g2, ids2, err := ParseGenLabelRequest(enc)
			if err != nil || g2 != gen || len(ids2) != len(ids) {
				t.Fatalf("gen label request does not round-trip: err %v", err)
			}
		case OpLoadGeneration, OpGenLoaded:
			gen, err := ParseGeneration(payload)
			if err != nil {
				return
			}
			if g2, err := ParseGeneration(AppendGeneration(nil, gen)); err != nil || g2 != gen {
				t.Fatalf("generation payload does not round-trip: err %v", err)
			}
		case OpDigestResp:
			n, d, present, missing, err := ParseDigestResponse(payload)
			if err != nil {
				return
			}
			if len(missing) > len(payload) {
				t.Fatalf("%d missing ids decoded from %d payload bytes", len(missing), len(payload))
			}
			enc := AppendDigestResponse(nil, n, d, present, missing)
			n2, d2, p2, m2, err := ParseDigestResponse(enc)
			if err != nil || n2 != n || d2 != d || p2 != present {
				t.Fatalf("digest response does not round-trip: err %v", err)
			}
			if !bytes.Equal(AppendDigestResponse(nil, n2, d2, p2, m2), enc) {
				t.Fatal("digest response encoding not a fixed point")
			}
		case OpRepairPull:
			source, ids, err := ParseRepairRequest(payload)
			if err != nil {
				return
			}
			if len(ids) > len(payload) || len(source) > len(payload) {
				t.Fatalf("repair request decoded fields exceed %d payload bytes", len(payload))
			}
			enc := AppendRepairRequest(nil, source, ids)
			s2, ids2, err := ParseRepairRequest(enc)
			if err != nil || s2 != source {
				t.Fatalf("re-parse of accepted repair request failed: %v", err)
			}
			if !bytes.Equal(AppendRepairRequest(nil, s2, ids2), enc) {
				t.Fatal("repair request does not round-trip")
			}
		case OpRepairPulled:
			installed, failed, err := ParseRepairResponse(payload)
			if err != nil {
				return
			}
			i2, f2, err := ParseRepairResponse(AppendRepairResponse(nil, installed, failed))
			if err != nil || i2 != installed || f2 != failed {
				t.Fatalf("repair response does not round-trip: err %v", err)
			}
		}
	})
}
