package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fsdl/internal/backoff"
)

// maxRepairHints bounds the Unknown-record hint set so a flood of
// degraded fetches can't grow it without limit; the full sweep covers
// everything regardless, hints only accelerate it.
const maxRepairHints = 1 << 16

// repairPullTimeout is the per-RPC leash for OpRepairPull: the target
// shard streams records from the source and paces itself, so it gets
// far more time than a label fetch.
const repairPullTimeout = 30 * time.Second

// repairer is the frontend's anti-entropy loop. Each sweep walks the
// vertex space, computes every shard's expected ownership from the
// current ring epoch, asks each shard for a digest over those ids
// (OpDigest), and tells shards with missing records to pull them from
// an intact replica (OpRepairPull). A non-authoritative shard —
// bootstrap replacement or truncated salvage — that audits clean is
// sealed (OpSeal), restoring its authority over absences and returning
// the cluster to exact answers. Unknown records observed on the fetch
// path land here as hints that trigger an early sweep.
type repairer struct {
	f        *Frontend
	interval time.Duration
	batch    int

	kick chan struct{}

	mu      sync.Mutex
	hints   map[int32]struct{}
	lastErr string

	sweeps    atomic.Int64
	repaired  atomic.Int64
	backlog   atomic.Int64
	sealed    atomic.Int64
	converged atomic.Bool
}

func newRepairer(f *Frontend, interval time.Duration, batch int) *repairer {
	return &repairer{
		f:        f,
		interval: interval,
		batch:    batch,
		kick:     make(chan struct{}, 1),
		hints:    make(map[int32]struct{}),
	}
}

// noteUnknown records a fetch-path repair hint and wakes the loop: a
// replica just answered Unknown for a vertex it should own.
func (r *repairer) noteUnknown(v int32) {
	r.mu.Lock()
	if len(r.hints) < maxRepairHints {
		r.hints[v] = struct{}{}
	}
	r.mu.Unlock()
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

func (r *repairer) loop() {
	defer r.f.done.Done()
	for {
		// Jittered so a fleet of frontends doesn't digest-storm the
		// shards in lockstep.
		t := time.NewTimer(backoff.Jittered(r.interval, 0.2))
		select {
		case <-r.f.stop:
			t.Stop()
			return
		case <-t.C:
		case <-r.kick:
			t.Stop()
		}
		r.sweep()
	}
}

// sweep runs one full anti-entropy pass against the current epoch.
// Sealing is deliberately one sweep behind repair: a shard is sealed
// only when it audits clean *at the start* of a pass, so authority is
// restored from a verified digest, never assumed from a just-finished
// transfer.
func (r *repairer) sweep() {
	f := r.f
	st := f.state.Load()
	r.sweeps.Add(1)

	// Expected ownership for this epoch, one ring walk per vertex.
	expected := make([][]int32, len(st.nodes))
	buf := make([]int, 0, 8)
	for v := 0; v < f.n; v++ {
		buf = st.ring.Owners(int32(v), buf[:0])
		for _, o := range buf {
			expected[o] = append(expected[o], int32(v))
		}
	}

	var backlog int64
	allClean := true
	for oi, c := range st.nodes {
		clean, left := r.auditShard(st, c, expected[oi])
		backlog += left
		if !clean {
			allClean = false
			continue
		}
		if c.lastFlags.Load()&PongNonAuthoritative != 0 {
			// Clean audit of a non-authoritative shard: it holds every
			// record it should — let it vouch for absences again.
			if err := c.sealShard(); err != nil {
				r.setErr(err)
				allClean = false
			} else {
				c.lastFlags.Store(c.lastFlags.Load() &^ PongNonAuthoritative)
				r.sealed.Add(1)
			}
		}
	}
	r.backlog.Store(backlog)
	r.converged.Store(allClean)
	if allClean {
		r.mu.Lock()
		clear(r.hints)
		r.lastErr = ""
		r.mu.Unlock()
	}
}

// auditShard digests one shard's expected vertex range in batches and
// pulls whatever is missing from intact replicas. clean reports whether
// the shard was reachable and missing nothing *before* any pulls; left
// counts records still missing after this pass's pulls.
func (r *repairer) auditShard(st *ringState, c *shardClient, expect []int32) (clean bool, left int64) {
	if !c.healthy.Load() || c.mismatched.Load() {
		// An unreachable shard can't be audited; the cluster isn't
		// converged until it returns or is removed from the ring.
		return false, 0
	}
	clean = true
	ownerBuf := make([]int, 0, 8)
	for base := 0; base < len(expect); base += r.batch {
		chunk := expect[base:min(base+r.batch, len(expect))]
		_, _, missing, err := c.digest(chunk, r.f.n)
		if err != nil {
			r.setErr(err)
			return false, left
		}
		if len(missing) == 0 {
			continue
		}
		clean = false
		left += int64(len(missing))

		// Group the missing ids by pull source: another owner of the
		// vertex that is reachable and authoritative (a draining shard
		// qualifies — it keeps its data and that is exactly what drain
		// is for).
		pulls := make(map[*shardClient][]int32)
		for _, v := range missing {
			ownerBuf = st.ring.Owners(v, ownerBuf[:0])
			var src *shardClient
			for _, o := range ownerBuf {
				cand := st.nodes[o]
				if cand == c || !cand.healthy.Load() ||
					cand.lastFlags.Load()&PongNonAuthoritative != 0 {
					continue
				}
				src = cand
				break
			}
			if src == nil {
				continue // no intact replica right now; stays in the backlog
			}
			pulls[src] = append(pulls[src], v)
		}
		for src, ids := range pulls {
			installed, failed, err := c.repairPull(src.node.Addr, ids)
			r.repaired.Add(int64(installed))
			left -= int64(installed)
			if err != nil {
				r.setErr(err)
			} else if failed > 0 {
				r.setErr(fmt.Errorf("cluster: repair of %s from %s: %d of %d records failed",
					c.node.Name, src.node.Name, failed, len(ids)))
			}
		}
	}
	return clean, left
}

func (r *repairer) setErr(err error) {
	r.mu.Lock()
	r.lastErr = err.Error()
	r.mu.Unlock()
}

func (r *repairer) status() RepairStatus {
	r.mu.Lock()
	hints, lastErr := len(r.hints), r.lastErr
	r.mu.Unlock()
	return RepairStatus{
		Enabled:   true,
		Sweeps:    r.sweeps.Load(),
		Repaired:  r.repaired.Load(),
		Backlog:   r.backlog.Load(),
		Hints:     hints,
		Sealed:    r.sealed.Load(),
		Converged: r.converged.Load(),
		LastError: lastErr,
	}
}

// RepairStatus is the anti-entropy loop's state in a status snapshot.
type RepairStatus struct {
	Enabled bool `json:"enabled"`
	// Sweeps counts completed anti-entropy passes; Repaired counts
	// records installed via pulls; Backlog is the records still known
	// missing after the last pass; Hints is the pending Unknown-record
	// hint count from the fetch path; Sealed counts shards restored to
	// authority.
	Sweeps   int64 `json:"sweeps"`
	Repaired int64 `json:"repaired_records"`
	Backlog  int64 `json:"backlog"`
	Hints    int   `json:"hints"`
	Sealed   int64 `json:"sealed_shards"`
	// Converged is true when the last pass found every shard reachable
	// and holding its full expected range — the cluster-wide digest
	// equality the runbook polls for.
	Converged bool   `json:"converged"`
	LastError string `json:"last_error,omitempty"`
}

// RetryBudgetStatus is the retry-budget token bucket's state.
type RetryBudgetStatus struct {
	Enabled bool    `json:"enabled"`
	Tokens  float64 `json:"tokens"`
	Spent   int64   `json:"spent"`
	Denied  int64   `json:"denied"`
}

// ClusterStatus is the frontend's admin snapshot: ring epoch, per-shard
// health (including breaker and authority state), repair progress and
// retry-budget level. Served at /v1/cluster/status and rendered by
// `fsdl cluster status`.
type ClusterStatus struct {
	Epoch uint64 `json:"epoch"`
	// Generation is the label generation the frontend routes against;
	// each shard's entry reports the generation it last claimed to
	// serve, so a lagging replica is visible at a glance.
	Generation  uint64            `json:"generation"`
	NumVertices int               `json:"num_vertices"`
	Replication int               `json:"replication"`
	Shards      []ShardHealth     `json:"shards"`
	Repair      RepairStatus      `json:"repair"`
	RetryBudget RetryBudgetStatus `json:"retry_budget"`
	// Live summarizes the co-located live-update pipeline (nil on
	// frontends without one): the unbaked delta size and the mutation
	// WAL's segment retention. Per-shard delta attribution lands in
	// each ShardHealth.PendingDelta.
	Live *LiveStatus `json:"live,omitempty"`
}

// LiveStatus is the live-update slice of a ClusterStatus.
type LiveStatus struct {
	PendingEdges    int     `json:"pending_edges"`
	WALSegments     int     `json:"wal_segments"`
	WALOldestAgeSec float64 `json:"wal_oldest_age_seconds,omitempty"`
}

// Status returns the admin snapshot for the current epoch.
func (f *Frontend) Status() ClusterStatus {
	st := f.state.Load()
	out := ClusterStatus{
		Epoch:       st.epoch,
		Generation:  st.gen,
		NumVertices: f.n,
		Replication: st.ring.Replication(),
		Shards:      f.healthAt(st),
	}
	if fn := f.liveStats.Load(); fn != nil {
		ls := (*fn)()
		out.Live = &LiveStatus{PendingEdges: len(ls.PendingEdges), WALSegments: ls.WALSegments}
		if ls.WALOldestAge > 0 {
			out.Live.WALOldestAgeSec = ls.WALOldestAge.Seconds()
		}
		// Attribute each pending edge to the shards owning either
		// endpoint: those are the labels the delta contradicts and the
		// partitions the next incremental compaction will refresh. One
		// edge counts once per shard even when it owns both ends.
		counts := make([]int, len(st.nodes))
		owners := make([]int, 0, 8)
		touched := make(map[int]struct{}, 8)
		for _, e := range ls.PendingEdges {
			clear(touched)
			for _, v := range e {
				owners = st.ring.Owners(v, owners[:0])
				for _, idx := range owners {
					touched[idx] = struct{}{}
				}
			}
			for idx := range touched {
				counts[idx]++
			}
		}
		for i := range out.Shards {
			out.Shards[i].PendingDelta = counts[i]
		}
	}
	if f.rep != nil {
		out.Repair = f.rep.status()
	}
	if f.budget != nil {
		out.RetryBudget = RetryBudgetStatus{
			Enabled: true,
			Tokens:  f.budget.level(),
			Spent:   f.met.budgetSpent.Load(),
			Denied:  f.met.budgetDenied.Load(),
		}
	}
	return out
}

// StatusJSON implements the server's optional cluster-admin interface
// without the server importing this package.
func (f *Frontend) StatusJSON() any { return f.Status() }

// digest asks the shard for a presence digest over ids, validating the
// vertex space, and returns the digest, present count and missing ids.
func (c *shardClient) digest(ids []int32, wantN int) (uint32, int, []int32, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.FetchTimeout)
	defer cancel()
	frames, err := c.call(ctx, OpDigest, AppendLabelRequest(nil, ids), 1)
	if err != nil {
		return 0, 0, nil, err
	}
	switch frames[0].op {
	case OpDigestResp:
		n, d, present, missing, err := ParseDigestResponse(frames[0].payload)
		if err != nil {
			return 0, 0, nil, err
		}
		if n != wantN {
			return 0, 0, nil, fmt.Errorf("cluster: shard %s serves vertex space %d, want %d", c.node.Name, n, wantN)
		}
		return d, present, missing, nil
	case OpError:
		return 0, 0, nil, fmt.Errorf("%w: %s", errShardError, frames[0].payload)
	default:
		return 0, 0, nil, fmt.Errorf("cluster: unexpected digest response op %d", frames[0].op)
	}
}

// repairPull tells the shard to pull ids from the replica at source.
func (c *shardClient) repairPull(source string, ids []int32) (installed, failed int, err error) {
	frames, err := c.callTimeout(context.Background(), OpRepairPull,
		AppendRepairRequest(nil, source, ids), 1, repairPullTimeout)
	if err != nil {
		return 0, 0, err
	}
	switch frames[0].op {
	case OpRepairPulled:
		return ParseRepairResponse(frames[0].payload)
	case OpError:
		return 0, 0, fmt.Errorf("%w: %s", errShardError, frames[0].payload)
	default:
		return 0, 0, fmt.Errorf("cluster: unexpected repair response op %d", frames[0].op)
	}
}

// sealShard restores the shard's authority over absences.
func (c *shardClient) sealShard() error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.FetchTimeout)
	defer cancel()
	frames, err := c.call(ctx, OpSeal, nil, 1)
	if err != nil {
		return err
	}
	switch frames[0].op {
	case OpSealed:
		return nil
	case OpError:
		return fmt.Errorf("%w: %s", errShardError, frames[0].payload)
	default:
		return fmt.Errorf("cluster: unexpected seal response op %d", frames[0].op)
	}
}
