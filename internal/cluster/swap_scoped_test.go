package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fsdl/internal/labelstore"
)

// writeGenerationDir lays out a generation directory under root: the
// full labels.fsdl plus a partition file per named shard, all listed in
// a verified manifest.
func writeGenerationDir(t *testing.T, root string, gen uint64, st *labelstore.Store, parts map[string][]int) string {
	t.Helper()
	dir := filepath.Join(root, labelstore.GenerationDirName(gen))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	m := &labelstore.Manifest{Generation: gen, N: st.NumVertices()}
	write := func(name string, ids []int) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if ids == nil {
			err = st.Save(f)
		} else {
			err = st.SaveVertices(f, ids)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
		crc, err := labelstore.FileCRC(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		mf := labelstore.ManifestFile{Name: name, Records: st.NumLabels(), First: 0, Last: st.NumVertices() - 1, CRC: crc}
		if ids != nil {
			mf.Records, mf.First, mf.Last = len(ids), ids[0], ids[len(ids)-1]
		}
		m.Files = append(m.Files, mf)
	}
	write(labelstore.GenerationLabelsFile, nil)
	for name, ids := range parts {
		write(name+".fsdl", ids)
	}
	if err := labelstore.WriteManifestFile(dir, m); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestScopedGenerationSwap: a scoped swap loads the new generation from
// disk only on the shards the compaction changed; every other shard
// re-tags (aliases) the store it already serves. All shards end on the
// new generation, the old one stays answerable for pinned fetches, and
// the flip is a single epoch bump.
func TestScopedGenerationSwap(t *testing.T) {
	_, st := buildFullStore(t, 6)
	root := t.TempDir()

	const shards = 3
	names := make([]Node, shards)
	for i := range names {
		names[i] = Node{Name: fmt.Sprintf("shard%d", i)}
	}
	ring := NewRing(names, 1)
	parts := ring.Partition(st.NumVertices())

	tc := &testCluster{membership: &Membership{Replication: 1}}
	for i := 0; i < shards; i++ {
		ps := partitionStore(t, st, parts[i])
		srv, err := NewShardServer(ShardConfig{Store: ps, Name: names[i].Name, GenerationRoot: root})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		tc.membership.Nodes = append(tc.membership.Nodes, Node{Name: names[i].Name, Addr: ln.Addr().String()})
		tc.shards = append(tc.shards, srv)
		tc.stores = append(tc.stores, ps)
	}
	t.Cleanup(func() {
		for _, s := range tc.shards {
			s.Close()
		}
	})

	// Generation 2 on disk carries a partition file only for shard0 —
	// the one shard the "compaction" changed.
	writeGenerationDir(t, root, 2, st, map[string][]int{"shard0": parts[0]})

	f := newTestFrontend(t, tc, nil)
	epoch0 := f.Epoch()
	epoch, err := f.SwapGenerationScoped(2, []string{"shard0"})
	if err != nil {
		t.Fatalf("SwapGenerationScoped: %v", err)
	}
	if epoch != epoch0+1 {
		t.Fatalf("epoch = %d, want %d", epoch, epoch0+1)
	}
	if got := f.Generation(); got != 2 {
		t.Fatalf("frontend generation = %d, want 2", got)
	}
	for i, srv := range tc.shards {
		if got := srv.Generation(); got != 2 {
			t.Fatalf("shard%d generation = %d, want 2", i, got)
		}
		cur, _ := srv.currentStore()
		if i == 0 {
			if cur == tc.stores[i] {
				t.Fatal("shard0 was aliased; a changed shard must load from disk")
			}
		} else if cur != tc.stores[i] {
			t.Fatalf("shard%d reloaded from disk; an unchanged shard must alias", i)
		}
		// The displaced generation stays answerable for pinned fetches.
		if prev, err := srv.storeForGen(1); err != nil || prev == nil {
			t.Fatalf("shard%d lost generation 1 across the swap: %v", i, err)
		}
	}
	// Queries still resolve after the swap.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := f.Label(ctx, 0); err != nil {
		t.Fatalf("Label after scoped swap: %v", err)
	}
	// Aliasing must never move a shard backwards.
	if err := tc.shards[1].AliasGeneration(1); err == nil {
		t.Fatal("alias to an older generation accepted")
	}
}

// partitionStore extracts the labels of ids into a fresh store.
func partitionStore(t testing.TB, st *labelstore.Store, ids []int) *labelstore.Store {
	t.Helper()
	var held []int
	for _, v := range ids {
		if st.Has(v) {
			held = append(held, v)
		}
	}
	var buf bytes.Buffer
	if err := st.SaveVertices(&buf, held); err != nil {
		t.Fatal(err)
	}
	ps, err := labelstore.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// TestStatusLivePendingDelta: with a live-stats hook registered, the
// cluster status attributes each pending delta edge to the shards
// owning its endpoints and surfaces the WAL's segment retention.
func TestStatusLivePendingDelta(t *testing.T) {
	_, st := buildFullStore(t, 6)
	tc := startCluster(t, st, 2, 1, nil)
	f := newTestFrontend(t, tc, nil)

	ring := f.state.Load().ring
	owners := make([]int, 0, 2)
	// One edge inside each shard's range, chosen by actual ownership.
	var e0, e1 [2]int32
	found0, found1 := false, false
	for v := int32(0); v < int32(st.NumVertices()); v++ {
		owners = ring.Owners(v, owners[:0])
		if owners[0] == 0 && !found0 {
			e0, found0 = [2]int32{v, v}, true
		}
		if owners[0] == 1 && !found1 {
			e1, found1 = [2]int32{v, v}, true
		}
	}
	if !found0 || !found1 {
		t.Fatal("ring leaves a shard with no vertices")
	}
	f.SetLiveStats(func() LiveStats {
		return LiveStats{
			PendingEdges: [][2]int32{e0, e1},
			WALSegments:  3,
			WALOldestAge: 90 * time.Second,
		}
	})
	cs := f.Status()
	if cs.Live == nil {
		t.Fatal("status has no live section")
	}
	if cs.Live.PendingEdges != 2 || cs.Live.WALSegments != 3 {
		t.Fatalf("live status = %+v", cs.Live)
	}
	if cs.Live.WALOldestAgeSec < 89 || cs.Live.WALOldestAgeSec > 91 {
		t.Fatalf("wal oldest age = %v", cs.Live.WALOldestAgeSec)
	}
	total := 0
	for _, sh := range cs.Shards {
		total += sh.PendingDelta
	}
	if total != 2 {
		t.Fatalf("pending delta attributed %d times, want 2 (shards: %+v)", total, cs.Shards)
	}
	f.SetLiveStats(nil)
	if cs := f.Status(); cs.Live != nil {
		t.Fatal("live section survives unregistering the hook")
	}
}
