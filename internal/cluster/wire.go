package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fsdl/internal/frame"
)

// The wire protocol is a stream of self-delimiting frames in the
// shared codec of internal/frame (magic "FC", version, op, length,
// payload, CRC32-IEEE trailer — see that package for the layout). A
// frame that passes the CRC was neither truncated nor bit-flipped in
// flight; a frame that fails it poisons the connection (framing can no
// longer be trusted) and the caller must redial. The codec lives in
// its own leaf package because the live-update mutation WAL journals
// the same frames; this file keeps thin aliases so cluster callers and
// the shard protocol read naturally.
const (
	frameMagic0 = 'F'
	frameMagic1 = 'C'
	frameVer    = 1

	// frameHeaderLen is magic+version+op+length; frameTrailerLen the CRC.
	frameHeaderLen  = frame.HeaderLen
	frameTrailerLen = frame.TrailerLen

	// MaxFramePayload bounds a frame's payload so a corrupted or hostile
	// length field cannot make the reader allocate unbounded memory.
	MaxFramePayload = frame.MaxPayload
)

// Frame ops. Requests flow frontend→shard, responses shard→frontend.
const (
	// OpGetLabels asks for a batch of label records by vertex id.
	OpGetLabels byte = 1
	// OpLabels answers OpGetLabels with one record per requested vertex.
	OpLabels byte = 2
	// OpPing is the health probe; OpPong answers it with store vitals.
	OpPing byte = 3
	OpPong byte = 4
	// OpError carries a shard-side failure message.
	OpError byte = 5
	// OpLabelsPart is a continuation chunk of an OpLabels response:
	// the payload encoding is identical, but more frames follow for the
	// same request. The final chunk arrives as a plain OpLabels frame,
	// so a response — however many labels it carries — never needs a
	// payload past MaxFramePayload.
	OpLabelsPart byte = 6
	// OpDigest asks for the anti-entropy digest of a batch of vertex
	// ids (request payload identical to OpGetLabels); OpDigestResp
	// answers with the digest, the present count and the ids the shard
	// does not hold. The repairer compares digests across replicas to
	// find what a shard is missing without shipping any label bytes.
	OpDigest     byte = 7
	OpDigestResp byte = 8
	// OpRepairPull instructs a shard to pull the named records from a
	// source replica (by address) and install them into its live store;
	// OpRepairPulled reports how many records were installed and how
	// many failed. Label bytes flow replica→replica, never through the
	// frontend.
	OpRepairPull   byte = 9
	OpRepairPulled byte = 10
	// OpSeal tells a non-authoritative shard (salvaged with truncation,
	// or booted empty awaiting repair) that anti-entropy has verified
	// its partition complete: from now on an absent record is an
	// authoritative "not here", not an unknown. OpSealed acknowledges.
	OpSeal   byte = 11
	OpSealed byte = 12
	// OpGetLabelsGen is OpGetLabels tagged with the label generation the
	// caller is routing against: uvarint generation, then the standard
	// label-request payload. A shard answers from the store serving that
	// generation — the current one or, during a swap window, the
	// previous one it still holds — so an in-flight scatter started
	// before a swap completes against the generation it began on.
	// Generation 0 means "whatever is current". Responses are ordinary
	// OpLabels / OpLabelsPart frames.
	OpGetLabelsGen byte = 13
	// OpLoadGeneration tells a shard to activate the named label
	// generation from its generation root (uvarint generation);
	// OpGenLoaded acknowledges with the generation now active. The
	// displaced store is retained as the previous generation so
	// gen-tagged fetches racing the swap still complete.
	OpLoadGeneration byte = 14
	OpGenLoaded      byte = 15
	// OpAliasGeneration tells a shard its partition is byte-identical
	// across a generation boundary: re-tag the store it already serves
	// as the named generation (uvarint generation) without touching
	// disk. The scoped swap sends this to every shard whose partition
	// an incremental compaction left untouched, so only changed shards
	// pay a load. The displaced tag is retained as the previous
	// generation exactly like a real load, keeping gen-pinned fetches
	// racing the swap answerable. OpGenLoaded acknowledges.
	OpAliasGeneration byte = 16
)

// Wire protocol errors, aliased so callers can errors.Is against
// either package's name.
var (
	ErrBadMagic      = frame.ErrBadMagic
	ErrBadVersion    = frame.ErrBadVersion
	ErrFrameTooLarge = frame.ErrTooLarge
	ErrCRC           = frame.ErrCRC
)

// AppendFrame appends one encoded frame to dst and returns the extended
// slice.
func AppendFrame(dst []byte, op byte, payload []byte) []byte {
	return frame.Append(dst, op, payload)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, op byte, payload []byte) error {
	return frame.Write(w, op, payload)
}

// ReadFrame reads one frame from r, verifying magic, version, length
// bound and checksum. The returned payload is freshly allocated and
// safe to retain. Any error other than a clean io.EOF at a frame
// boundary means the stream can no longer be trusted.
func ReadFrame(r io.Reader) (op byte, payload []byte, err error) {
	return frame.Read(r)
}

// DecodeFrame parses one frame from the front of buf, returning the
// remainder. It applies the same validation as ReadFrame and never
// allocates from attacker-chosen lengths: the payload is a sub-slice of
// buf.
func DecodeFrame(buf []byte) (op byte, payload, rest []byte, err error) {
	return frame.Decode(buf)
}

// maxWireLabelBits rejects absurd per-record bit lengths before any
// record is acted on (matches the labelstore container's guard).
const maxWireLabelBits = 1 << 40

// AppendLabelRequest encodes an OpGetLabels payload: the vertex ids
// whose labels the caller wants, in the given order.
func AppendLabelRequest(dst []byte, ids []int32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, v := range ids {
		dst = binary.AppendUvarint(dst, uint64(uint32(v)))
	}
	return dst
}

// ParseLabelRequest decodes an OpGetLabels payload.
func ParseLabelRequest(payload []byte) ([]int32, error) {
	count, k := binary.Uvarint(payload)
	if k <= 0 {
		return nil, fmt.Errorf("cluster: label request: bad count")
	}
	payload = payload[k:]
	// Every id costs at least one byte, so a count beyond the remaining
	// payload is a lie — reject before allocating.
	if count > uint64(len(payload)) {
		return nil, fmt.Errorf("cluster: label request: count %d exceeds payload", count)
	}
	ids := make([]int32, 0, count)
	for i := uint64(0); i < count; i++ {
		v, k := binary.Uvarint(payload)
		if k <= 0 {
			return nil, fmt.Errorf("cluster: label request: truncated id %d", i)
		}
		if v > math.MaxInt32 {
			return nil, fmt.Errorf("cluster: label request: id %d out of range", v)
		}
		payload = payload[k:]
		ids = append(ids, int32(v))
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("cluster: label request: %d trailing bytes", len(payload))
	}
	return ids, nil
}

// LabelRecord is one vertex's answer inside an OpLabels response.
// Present=false with Unknown=false means the shard's partition does
// not hold that label (the authoritative "no such record here",
// distinct from a transport failure). Unknown=true means the shard
// cannot answer authoritatively — the record was lost to corruption
// when the store was salvage-loaded — so the caller should try another
// replica and must not cache the absence. Bits/Data mirror the
// labelstore record encoding.
type LabelRecord struct {
	Vertex  int32
	Present bool
	Unknown bool
	Bits    int
	Data    []byte
}

// wireSize returns an upper bound on r's encoded size inside an
// OpLabels payload — the shard's chunking budget unit.
func (r LabelRecord) wireSize() int {
	const idAndPresence = binary.MaxVarintLen32 + 1
	if !r.Present {
		return idAndPresence
	}
	return idAndPresence + binary.MaxVarintLen64 + (r.Bits+7)/8
}

// AppendLabelResponse encodes an OpLabels payload: the vertex-id space n
// of the shard's store, then one record per requested vertex.
func AppendLabelResponse(dst []byte, n int, recs []LabelRecord) []byte {
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	for _, r := range recs {
		dst = binary.AppendUvarint(dst, uint64(uint32(r.Vertex)))
		switch {
		case r.Present:
			dst = append(dst, 1)
			dst = binary.AppendUvarint(dst, uint64(r.Bits))
			dst = append(dst, r.Data[:(r.Bits+7)/8]...)
		case r.Unknown:
			dst = append(dst, 2)
		default:
			dst = append(dst, 0)
		}
	}
	return dst
}

// ParseLabelResponse decodes an OpLabels payload. Record data slices
// alias the payload; callers that retain them past the payload's
// lifetime must copy (ReadFrame payloads are freshly allocated, so
// retaining those is safe).
func ParseLabelResponse(payload []byte) (n int, recs []LabelRecord, err error) {
	nv, k := binary.Uvarint(payload)
	if k <= 0 || nv > math.MaxInt32 {
		return 0, nil, fmt.Errorf("cluster: label response: bad vertex space")
	}
	payload = payload[k:]
	count, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, nil, fmt.Errorf("cluster: label response: bad count")
	}
	payload = payload[k:]
	// Each record costs at least two bytes (id + presence byte).
	if count > uint64(len(payload)) {
		return 0, nil, fmt.Errorf("cluster: label response: count %d exceeds payload", count)
	}
	recs = make([]LabelRecord, 0, count)
	for i := uint64(0); i < count; i++ {
		v, k := binary.Uvarint(payload)
		if k <= 0 {
			return 0, nil, fmt.Errorf("cluster: label response: truncated id %d", i)
		}
		if v >= nv {
			return 0, nil, fmt.Errorf("cluster: label response: vertex %d out of range [0,%d)", v, nv)
		}
		payload = payload[k:]
		if len(payload) == 0 {
			return 0, nil, fmt.Errorf("cluster: label response: missing presence byte for record %d", i)
		}
		present := payload[0]
		payload = payload[1:]
		rec := LabelRecord{Vertex: int32(v)}
		switch present {
		case 0:
		case 2:
			rec.Unknown = true
		case 1:
			bits, k := binary.Uvarint(payload)
			if k <= 0 {
				return 0, nil, fmt.Errorf("cluster: label response: truncated bit length for record %d", i)
			}
			if bits > maxWireLabelBits {
				return 0, nil, fmt.Errorf("cluster: label response: implausible label size %d bits", bits)
			}
			payload = payload[k:]
			nbytes := int((bits + 7) / 8)
			if nbytes > len(payload) {
				return 0, nil, fmt.Errorf("cluster: label response: record %d wants %d bytes, %d left", i, nbytes, len(payload))
			}
			rec.Present = true
			rec.Bits = int(bits)
			rec.Data = payload[:nbytes:nbytes]
			payload = payload[nbytes:]
		default:
			return 0, nil, fmt.Errorf("cluster: label response: bad presence byte %d", present)
		}
		recs = append(recs, rec)
	}
	if len(payload) != 0 {
		return 0, nil, fmt.Errorf("cluster: label response: %d trailing bytes", len(payload))
	}
	return int(nv), recs, nil
}

// Pong flag bits (the third varint of an OpPong payload).
const (
	// PongNonAuthoritative marks a shard that cannot treat an absent
	// record as an authoritative miss: its store was salvage-loaded
	// with truncation, or it booted empty and is awaiting repair. The
	// flag clears when the repairer seals the shard.
	PongNonAuthoritative uint64 = 1 << 0
)

// AppendPong encodes an OpPong payload: the shard's vertex space, how
// many labels its partition holds, its status flag bits, and the label
// generation its current store serves.
func AppendPong(dst []byte, n, labels int, flags, generation uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.AppendUvarint(dst, uint64(labels))
	dst = binary.AppendUvarint(dst, flags)
	return binary.AppendUvarint(dst, generation)
}

// ParsePong decodes an OpPong payload.
func ParsePong(payload []byte) (n, labels int, flags, generation uint64, err error) {
	nv, k := binary.Uvarint(payload)
	if k <= 0 || nv > math.MaxInt32 {
		return 0, 0, 0, 0, fmt.Errorf("cluster: pong: bad vertex space")
	}
	payload = payload[k:]
	lv, k := binary.Uvarint(payload)
	if k <= 0 || lv > math.MaxInt32 {
		return 0, 0, 0, 0, fmt.Errorf("cluster: pong: bad label count")
	}
	payload = payload[k:]
	flags, k = binary.Uvarint(payload)
	if k <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("cluster: pong: bad flags")
	}
	payload = payload[k:]
	generation, k = binary.Uvarint(payload)
	if k <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("cluster: pong: bad generation")
	}
	if len(payload[k:]) != 0 {
		return 0, 0, 0, 0, fmt.Errorf("cluster: pong: trailing bytes")
	}
	return int(nv), int(lv), flags, generation, nil
}

// AppendGenLabelRequest encodes an OpGetLabelsGen payload: the target
// generation followed by the standard label request.
func AppendGenLabelRequest(dst []byte, generation uint64, ids []int32) []byte {
	dst = binary.AppendUvarint(dst, generation)
	return AppendLabelRequest(dst, ids)
}

// ParseGenLabelRequest decodes an OpGetLabelsGen payload.
func ParseGenLabelRequest(payload []byte) (generation uint64, ids []int32, err error) {
	generation, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, nil, fmt.Errorf("cluster: label request: bad generation")
	}
	ids, err = ParseLabelRequest(payload[k:])
	return generation, ids, err
}

// AppendGeneration encodes an OpLoadGeneration or OpGenLoaded payload:
// a single uvarint generation id.
func AppendGeneration(dst []byte, generation uint64) []byte {
	return binary.AppendUvarint(dst, generation)
}

// ParseGeneration decodes an OpLoadGeneration / OpGenLoaded payload.
func ParseGeneration(payload []byte) (uint64, error) {
	generation, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, fmt.Errorf("cluster: bad generation payload")
	}
	if len(payload[k:]) != 0 {
		return 0, fmt.Errorf("cluster: generation payload: trailing bytes")
	}
	return generation, nil
}

// AppendDigestResponse encodes an OpDigestResp payload: the shard's
// vertex space (the same cross-check every label response carries),
// the CRC32 digest over the present records, how many of the requested
// ids were present, and the sorted ids the shard does not hold.
func AppendDigestResponse(dst []byte, n int, digest uint32, present int, missing []int32) []byte {
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.LittleEndian.AppendUint32(dst, digest)
	dst = binary.AppendUvarint(dst, uint64(present))
	dst = binary.AppendUvarint(dst, uint64(len(missing)))
	for _, v := range missing {
		dst = binary.AppendUvarint(dst, uint64(uint32(v)))
	}
	return dst
}

// ParseDigestResponse decodes an OpDigestResp payload.
func ParseDigestResponse(payload []byte) (n int, digest uint32, present int, missing []int32, err error) {
	nv, k := binary.Uvarint(payload)
	if k <= 0 || nv > math.MaxInt32 {
		return 0, 0, 0, nil, fmt.Errorf("cluster: digest response: bad vertex space")
	}
	payload = payload[k:]
	if len(payload) < 4 {
		return 0, 0, 0, nil, fmt.Errorf("cluster: digest response: truncated digest")
	}
	digest = binary.LittleEndian.Uint32(payload)
	payload = payload[4:]
	pv, k := binary.Uvarint(payload)
	if k <= 0 || pv > math.MaxInt32 {
		return 0, 0, 0, nil, fmt.Errorf("cluster: digest response: bad present count")
	}
	payload = payload[k:]
	count, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, 0, 0, nil, fmt.Errorf("cluster: digest response: bad missing count")
	}
	payload = payload[k:]
	// Every missing id costs at least one byte.
	if count > uint64(len(payload)) {
		return 0, 0, 0, nil, fmt.Errorf("cluster: digest response: missing count %d exceeds payload", count)
	}
	missing = make([]int32, 0, count)
	for i := uint64(0); i < count; i++ {
		v, k := binary.Uvarint(payload)
		if k <= 0 {
			return 0, 0, 0, nil, fmt.Errorf("cluster: digest response: truncated missing id %d", i)
		}
		if v >= nv {
			return 0, 0, 0, nil, fmt.Errorf("cluster: digest response: missing id %d out of range [0,%d)", v, nv)
		}
		payload = payload[k:]
		missing = append(missing, int32(v))
	}
	if len(payload) != 0 {
		return 0, 0, 0, nil, fmt.Errorf("cluster: digest response: %d trailing bytes", len(payload))
	}
	return int(nv), digest, int(pv), missing, nil
}

// maxRepairSourceLen bounds the source-address field of an OpRepairPull
// so a hostile frame cannot make the shard dial a megabyte "address".
const maxRepairSourceLen = 256

// AppendRepairRequest encodes an OpRepairPull payload: the address of
// the replica to pull from, then the vertex ids to install.
func AppendRepairRequest(dst []byte, source string, ids []int32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(source)))
	dst = append(dst, source...)
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, v := range ids {
		dst = binary.AppendUvarint(dst, uint64(uint32(v)))
	}
	return dst
}

// ParseRepairRequest decodes an OpRepairPull payload.
func ParseRepairRequest(payload []byte) (source string, ids []int32, err error) {
	slen, k := binary.Uvarint(payload)
	if k <= 0 || slen > maxRepairSourceLen {
		return "", nil, fmt.Errorf("cluster: repair request: bad source length")
	}
	payload = payload[k:]
	if slen == 0 || uint64(len(payload)) < slen {
		return "", nil, fmt.Errorf("cluster: repair request: truncated source address")
	}
	source = string(payload[:slen])
	payload = payload[slen:]
	count, k := binary.Uvarint(payload)
	if k <= 0 {
		return "", nil, fmt.Errorf("cluster: repair request: bad id count")
	}
	payload = payload[k:]
	if count == 0 {
		return "", nil, fmt.Errorf("cluster: repair request: no ids")
	}
	if count > uint64(len(payload)) {
		return "", nil, fmt.Errorf("cluster: repair request: count %d exceeds payload", count)
	}
	ids = make([]int32, 0, count)
	for i := uint64(0); i < count; i++ {
		v, k := binary.Uvarint(payload)
		if k <= 0 {
			return "", nil, fmt.Errorf("cluster: repair request: truncated id %d", i)
		}
		if v > math.MaxInt32 {
			return "", nil, fmt.Errorf("cluster: repair request: id %d out of range", v)
		}
		payload = payload[k:]
		ids = append(ids, int32(v))
	}
	if len(payload) != 0 {
		return "", nil, fmt.Errorf("cluster: repair request: %d trailing bytes", len(payload))
	}
	return source, ids, nil
}

// AppendRepairResponse encodes an OpRepairPulled payload: how many
// records the shard installed and how many it could not.
func AppendRepairResponse(dst []byte, installed, failed int) []byte {
	dst = binary.AppendUvarint(dst, uint64(installed))
	return binary.AppendUvarint(dst, uint64(failed))
}

// ParseRepairResponse decodes an OpRepairPulled payload.
func ParseRepairResponse(payload []byte) (installed, failed int, err error) {
	iv, k := binary.Uvarint(payload)
	if k <= 0 || iv > math.MaxInt32 {
		return 0, 0, fmt.Errorf("cluster: repair response: bad installed count")
	}
	payload = payload[k:]
	fv, k := binary.Uvarint(payload)
	if k <= 0 || fv > math.MaxInt32 {
		return 0, 0, fmt.Errorf("cluster: repair response: bad failed count")
	}
	if len(payload[k:]) != 0 {
		return 0, 0, fmt.Errorf("cluster: repair response: trailing bytes")
	}
	return int(iv), int(fv), nil
}
