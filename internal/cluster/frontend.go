package cluster

import (
	"context"
	"fmt"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"fsdl/internal/backoff"
	"fsdl/internal/core"
	"fsdl/internal/lru"
	"fsdl/internal/stats"
)

// FrontendConfig configures a Frontend. Membership is required;
// everything else has a serviceable default.
type FrontendConfig struct {
	Membership *Membership

	// FetchTimeout bounds each individual fetch RPC (default 500ms).
	FetchTimeout time.Duration
	// DialTimeout bounds establishing a new shard connection (default
	// 300ms).
	DialTimeout time.Duration
	// HedgeDelay is how long the frontend waits on an in-flight fetch
	// before duplicating it to the next replica (default FetchTimeout/5;
	// negative disables hedging).
	HedgeDelay time.Duration

	// HealthInterval is the active health-probe period (default 1s,
	// jittered ±20% so frontends don't probe in lockstep);
	// HealthTimeout bounds each probe (default 250ms).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// StartupTimeout bounds New's wait for the first reachable shard
	// (default 10s) — the frontend needs one pong to learn the vertex
	// space.
	StartupTimeout time.Duration

	// LabelCacheSize bounds the decoded-label LRU (default 8192 entries;
	// negative disables). NegativeCacheSize bounds the confirmed-absence
	// LRU (default 1024; negative disables).
	LabelCacheSize    int
	NegativeCacheSize int
	// MaxIdleConns bounds the idle connection pool per shard (default 4).
	MaxIdleConns int

	// BreakerDisabled turns off the per-shard circuit breakers (on by
	// default). The remaining Breaker* fields tune them: outcomes are
	// counted over a rolling BreakerWindow (default 10s) sliced into
	// BreakerBuckets (default 10); once at least BreakerMinRequests
	// (default 8) outcomes are in the window and the failure fraction
	// reaches BreakerFailureRatio (default 0.5) the breaker opens,
	// shedding traffic for BreakerCooldown (default 2s, doubling per
	// consecutive re-open up to BreakerMaxCooldown, default 30s) before
	// admitting a half-open probe.
	BreakerDisabled     bool
	BreakerWindow       time.Duration
	BreakerBuckets      int
	BreakerMinRequests  int
	BreakerFailureRatio float64
	BreakerCooldown     time.Duration
	BreakerMaxCooldown  time.Duration

	// RetryBudgetRatio caps retries and hedges to this fraction of
	// first-attempt traffic (default 0.1; negative disables the budget).
	// RetryBudgetBurst is the bucket depth — how many retries may burst
	// after a quiet period (default 50).
	RetryBudgetRatio float64
	RetryBudgetBurst float64

	// RepairInterval is the anti-entropy sweep period (default 0:
	// disabled). Each sweep digests every shard's expected vertex range
	// and pulls missing records from intact replicas. RepairBatch bounds
	// the ids per digest RPC (default 2048).
	RepairInterval time.Duration
	RepairBatch    int
}

func (cfg *FrontendConfig) withDefaults() FrontendConfig {
	c := *cfg
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 500 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 300 * time.Millisecond
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = c.FetchTimeout / 5
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 250 * time.Millisecond
	}
	if c.StartupTimeout <= 0 {
		c.StartupTimeout = 10 * time.Second
	}
	if c.LabelCacheSize == 0 {
		c.LabelCacheSize = 8192
	}
	if c.NegativeCacheSize == 0 {
		c.NegativeCacheSize = 1024
	}
	if c.MaxIdleConns <= 0 {
		c.MaxIdleConns = 4
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 10 * time.Second
	}
	if c.BreakerBuckets <= 0 {
		c.BreakerBuckets = 10
	}
	if c.BreakerMinRequests <= 0 {
		c.BreakerMinRequests = 8
	}
	if c.BreakerFailureRatio <= 0 {
		c.BreakerFailureRatio = 0.5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.BreakerMaxCooldown <= 0 {
		c.BreakerMaxCooldown = 30 * time.Second
	}
	if c.RetryBudgetRatio == 0 {
		c.RetryBudgetRatio = 0.1
	}
	if c.RetryBudgetBurst <= 0 {
		c.RetryBudgetBurst = 50
	}
	if c.RepairBatch <= 0 {
		c.RepairBatch = 2048
	}
	return c
}

// ringState is one membership epoch: an immutable ring plus the client
// for each of its nodes. The frontend swaps the whole value atomically
// on join/leave/drain, so every fetch routes against one consistent
// epoch end to end — no request ever sees half a membership change.
type ringState struct {
	epoch uint64
	ring  *Ring
	nodes []*shardClient // nodes[i] is the client for ring node i
	// gen is the label generation every fetch in this epoch is tagged
	// with. SwapGeneration bumps it together with the epoch, so a
	// scatter that loaded the old state keeps completing against the
	// old generation (shards hold it as their previous store) while new
	// scatters route against the new one — the zero-downtime swap.
	gen uint64
}

// labelKey addresses one vertex's decoded label within one label
// generation. Keying the caches by generation — rather than flushing
// them on swap and hoping no in-flight scatter repopulates them — makes
// stale entries unreachable by construction: a scatter pinned to the
// old generation caches its answers under the old generation's keys,
// which no post-swap lookup ever consults. (The flush on swap survives
// purely as memory hygiene.) Before this, a fetch could pass its
// "still the active generation?" check, lose the race to the swap's
// flip-and-flush, and then seed the freshly flushed cache with an
// old-generation label — poisoning every later query for that vertex
// with a label whose graph no longer exists.
type labelKey struct {
	gen uint64
	v   int32
}

func labelKeyHash(k labelKey) uint64 {
	return lru.HashU32(uint32(k.v)) ^ (k.gen * 0x9e3779b97f4a7c15)
}

// clientByName returns the epoch's client for a shard name.
func (st *ringState) clientByName(name string) *shardClient {
	for _, c := range st.nodes {
		if c.node.Name == name {
			return c
		}
	}
	return nil
}

// Frontend is the cluster client embedded into the serving tier: it
// resolves vertices to shard owners on the ring, scatter-gathers label
// fetches with per-call deadlines, hedges slow calls to replicas, fails
// over around unhealthy shards (bounded by a retry budget), sheds
// traffic from browned-out shards via per-shard circuit breakers, and
// caches decoded labels and confirmed absences. Membership is epochal:
// Join/Leave/Drain build a new ring and swap it atomically. It
// implements the server's LabelSource so the decode path upstream is
// identical to the single-node one. Safe for concurrent use.
type Frontend struct {
	cfg         FrontendConfig
	n           int // global vertex space, learned from the first pong
	replication int

	state   atomic.Pointer[ringState]
	adminMu sync.Mutex // serializes membership changes

	labelCache *lru.Cache[labelKey, *core.Label]
	negCache   *lru.Cache[labelKey, struct{}]
	met        frontendMetrics
	budget     *retryBudget // nil when disabled
	rep        *repairer    // nil when repair is disabled

	// liveStats, when set, supplies the co-located live-update
	// pipeline's state for status rendering (pending delta, WAL
	// segments); nil on frontends without a pipeline.
	liveStats atomic.Pointer[func() LiveStats]

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// ShardHealth is one shard's state in a health snapshot.
type ShardHealth struct {
	Name    string `json:"name"`
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	Labels  int64  `json:"labels"`
	// Mismatched flags a reachable shard excluded from routing because
	// its vertex space disagrees with the cluster's (its partition came
	// from a different store).
	Mismatched bool `json:"mismatched,omitempty"`
	// Draining flags a shard administratively excluded from routing
	// while still serving as a repair source.
	Draining bool `json:"draining,omitempty"`
	// Breaker is the shard's circuit-breaker state ("closed", "open",
	// "half-open"); empty when breakers are disabled.
	Breaker string `json:"breaker,omitempty"`
	// NonAuthoritative flags a shard that cannot vouch for absences
	// (bootstrap replacement or truncated salvage) until repair seals it.
	NonAuthoritative bool `json:"non_authoritative,omitempty"`
	// Generation is the label generation the shard last reported
	// serving; GenLagged flags a reachable shard excluded from routing
	// because it serves an older generation and could not be caught up.
	Generation uint64 `json:"generation,omitempty"`
	GenLagged  bool   `json:"gen_lagged,omitempty"`
	// PendingDelta counts live mutation edges with an endpoint this
	// shard owns — the labels it serves that the pending delta already
	// contradicts, and the size of the refresh the next incremental
	// compaction will hand it. Only populated on frontends co-located
	// with a live-update pipeline.
	PendingDelta int `json:"pending_delta,omitempty"`
}

// LiveStats is the live-update pipeline state the serving tier shares
// with the frontend for status surfaces: the pending (unbaked) delta
// edges and the mutation WAL's segment retention.
type LiveStats struct {
	PendingEdges [][2]int32
	WALSegments  int
	WALOldestAge time.Duration
}

// SetLiveStats registers the callback Status uses to fold live-update
// state into the cluster snapshot. Pass nil to unregister.
func (f *Frontend) SetLiveStats(fn func() LiveStats) {
	if fn == nil {
		f.liveStats.Store(nil)
		return
	}
	f.liveStats.Store(&fn)
}

// NewFrontend connects to the cluster described by cfg.Membership. It
// blocks (up to StartupTimeout) until at least one shard answers a
// ping — that pong fixes the vertex space — then starts the background
// health checker and, when RepairInterval is set, the anti-entropy
// repairer. Shards that are down at startup are served around via
// replicas and picked back up by the health loop when they return.
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if cfg.Membership == nil {
		return nil, fmt.Errorf("cluster: FrontendConfig.Membership is required")
	}
	c := cfg.withDefaults()
	ring := c.Membership.Ring()
	f := &Frontend{
		cfg:         c,
		replication: ring.Replication(),
		stop:        make(chan struct{}),
	}
	st := &ringState{epoch: 1, ring: ring}
	for _, nd := range ring.Nodes() {
		st.nodes = append(st.nodes, newShardClient(nd, c))
	}
	f.state.Store(st)
	if c.RetryBudgetRatio > 0 {
		f.budget = newRetryBudget(c.RetryBudgetRatio, c.RetryBudgetBurst)
	}
	f.labelCache = lru.New[labelKey, *core.Label](c.LabelCacheSize, 8, labelKeyHash)
	f.negCache = lru.New[labelKey, struct{}](c.NegativeCacheSize, 8, labelKeyHash)

	deadline := time.Now().Add(c.StartupTimeout)
	pol := backoff.Policy{Base: 50 * time.Millisecond, Cap: 400 * time.Millisecond, Jitter: 0.2}
	for attempt := 0; ; attempt++ {
		f.sweepHealth()
		if n, ok := f.learnedN(st); ok {
			f.n = n
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: no shard reachable within %v", c.StartupTimeout)
		}
		time.Sleep(pol.Delay(attempt))
	}
	// All reachable shards must agree on the vertex space; disagreement
	// means the partitions came from different stores.
	for _, cl := range st.nodes {
		if cl.healthy.Load() {
			if n := int(cl.lastN.Load()); n != f.n {
				return nil, fmt.Errorf("cluster: shard %s serves vertex space %d, others %d — partitions from different stores?",
					cl.node.Name, n, f.n)
			}
		}
	}
	// Adopt the newest generation any healthy shard reports — after a
	// crash mid-swap some shards may lag; the health loop catches them
	// up (or fences them off) rather than serving mixed generations.
	var gen uint64
	for _, cl := range st.nodes {
		if cl.healthy.Load() && cl.lastGen.Load() > gen {
			gen = cl.lastGen.Load()
		}
	}
	st = &ringState{epoch: st.epoch, ring: st.ring, nodes: st.nodes, gen: gen}
	f.state.Store(st)
	f.sweepHealth() // re-fence any shard lagging the adopted generation
	f.done.Add(1)
	go f.healthLoop()
	if c.RepairInterval > 0 {
		f.rep = newRepairer(f, c.RepairInterval, c.RepairBatch)
		f.done.Add(1)
		go f.rep.loop()
	}
	return f, nil
}

// Close stops the background loops and severs pooled connections.
func (f *Frontend) Close() error {
	f.stopOnce.Do(func() { close(f.stop) })
	f.done.Wait()
	for _, c := range f.state.Load().nodes {
		c.closeIdle()
	}
	return nil
}

// NumVertices returns the cluster's vertex-id space.
func (f *Frontend) NumVertices() int { return f.n }

// Epoch returns the current membership epoch.
func (f *Frontend) Epoch() uint64 { return f.state.Load().epoch }

// Join adds a shard to the ring and swaps in the new epoch. The shard
// must be reachable and serve the cluster's vertex space — a membership
// change should fail loudly at the operator's terminal, not silently
// add a black hole to the ring. Consistent hashing bounds the label
// movement to the ranges the new node takes over; existing shards keep
// their (now partially redundant) records, and reads are unaffected
// because every vertex's old replicas still hold it.
func (f *Frontend) Join(name, addr string) (uint64, error) {
	f.adminMu.Lock()
	defer f.adminMu.Unlock()
	cur := f.state.Load()
	if cur.clientByName(name) != nil {
		return 0, fmt.Errorf("cluster: shard %q is already a member", name)
	}
	cl := newShardClient(Node{Name: name, Addr: addr}, f.cfg)
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.HealthTimeout)
	defer cancel()
	n, labels, flags, gen, err := cl.ping(ctx)
	if err != nil {
		return 0, fmt.Errorf("cluster: join %q refused, shard unreachable at %s: %w", name, addr, err)
	}
	if n != f.n {
		return 0, fmt.Errorf("cluster: join %q refused: serves vertex space %d, cluster has %d", name, n, f.n)
	}
	if cur.gen > 0 && gen != cur.gen {
		// A joiner on another label generation must catch up before it
		// can take traffic — a ring serving mixed generations would hand
		// out labels from different graphs.
		if err := cl.loadGeneration(cur.gen); err != nil {
			return 0, fmt.Errorf("cluster: join %q refused: serves generation %d, cluster on %d: %w",
				name, gen, cur.gen, err)
		}
		gen = cur.gen
	}
	cl.lastN.Store(int64(n))
	cl.lastLabels.Store(int64(labels))
	cl.lastFlags.Store(flags)
	cl.lastGen.Store(gen)
	cl.healthy.Store(true)

	nodes := append(slices.Clone(cur.ring.Nodes()), Node{Name: name, Addr: addr})
	ring := NewRing(nodes, f.replication)
	next := &ringState{epoch: cur.epoch + 1, ring: ring, gen: cur.gen}
	for _, nd := range ring.Nodes() {
		if c := cur.clientByName(nd.Name); c != nil {
			next.nodes = append(next.nodes, c)
		} else {
			next.nodes = append(next.nodes, cl)
		}
	}
	f.state.Store(next)
	f.kickRepair()
	return next.epoch, nil
}

// Leave removes a shard from the ring and swaps in the new epoch. The
// vertices it owned are re-served by the replicas that already hold
// them; the repairer then restores full replication on the nodes that
// inherited its ranges.
func (f *Frontend) Leave(name string) (uint64, error) {
	f.adminMu.Lock()
	defer f.adminMu.Unlock()
	cur := f.state.Load()
	gone := cur.clientByName(name)
	if gone == nil {
		return 0, fmt.Errorf("cluster: shard %q is not a member", name)
	}
	if len(cur.nodes) == 1 {
		return 0, fmt.Errorf("cluster: refusing to remove the last shard %q", name)
	}
	nodes := make([]Node, 0, len(cur.nodes)-1)
	for _, nd := range cur.ring.Nodes() {
		if nd.Name != name {
			nodes = append(nodes, nd)
		}
	}
	ring := NewRing(nodes, f.replication)
	next := &ringState{epoch: cur.epoch + 1, ring: ring, gen: cur.gen}
	for _, nd := range ring.Nodes() {
		next.nodes = append(next.nodes, cur.clientByName(nd.Name))
	}
	f.state.Store(next)
	gone.closeIdle()
	f.kickRepair()
	return next.epoch, nil
}

// Drain marks a shard routing-excluded (or re-included) without
// changing the ring: queries stop landing on it, but it keeps its data
// and remains a valid repair source. The idiom for replacing a live
// shard is drain → wait for repair to converge → leave.
func (f *Frontend) Drain(name string, drain bool) (uint64, error) {
	f.adminMu.Lock()
	defer f.adminMu.Unlock()
	cur := f.state.Load()
	c := cur.clientByName(name)
	if c == nil {
		return 0, fmt.Errorf("cluster: shard %q is not a member", name)
	}
	c.draining.Store(drain)
	next := &ringState{epoch: cur.epoch + 1, ring: cur.ring, nodes: cur.nodes, gen: cur.gen}
	f.state.Store(next)
	f.kickRepair()
	return next.epoch, nil
}

// Generation returns the label generation the frontend is routing
// against.
func (f *Frontend) Generation() uint64 { return f.state.Load().gen }

// genLoadTimeout bounds one OpLoadGeneration round trip: the shard
// verifies a manifest and loads a partition from disk, so it gets a
// far longer leash than a label fetch.
const genLoadTimeout = 15 * time.Second

// SwapGeneration activates label generation gen cluster-wide: every
// routable shard is told to load it (verifying its generation
// directory's manifest), and only when all of them hold it does the
// frontend flip routing — epoch bump, generation tag, cache flush — in
// one atomic state swap. In-flight scatters pinned to the old state
// keep completing against the old generation, which every shard
// retains as its previous store; new scatters route against the new
// one. If any shard fails to load, nothing flips: the shards that did
// load serve the old generation from their previous-store slot, so the
// cluster stays consistent on the old generation and the swap can be
// retried. Shards that are down during the swap are caught up by the
// health sweep when they return (or fenced off until they are).
func (f *Frontend) SwapGeneration(gen uint64) (uint64, error) {
	return f.swapGeneration(gen, nil)
}

// SwapGenerationScoped is SwapGeneration driven by an incremental
// compaction's per-partition dirty summary: shards named in changed
// load the new generation from disk, every other routable shard merely
// re-tags (aliases) the store it already serves — its partition file is
// byte-identical across the two generations, typically a hard link to
// the very same inode. The flip itself is unchanged: one atomic state
// swap after every shard holds the new generation, so the
// zero-downtime and generation-pinning guarantees are exactly those of
// a full swap, minus the redundant disk loads.
func (f *Frontend) SwapGenerationScoped(gen uint64, changed []string) (uint64, error) {
	set := make(map[string]bool, len(changed))
	for _, name := range changed {
		set[name] = true
	}
	return f.swapGeneration(gen, set)
}

// swapGeneration implements both swap flavors: changed == nil loads
// everywhere; otherwise only the named shards load and the rest alias.
func (f *Frontend) swapGeneration(gen uint64, changed map[string]bool) (uint64, error) {
	f.adminMu.Lock()
	defer f.adminMu.Unlock()
	cur := f.state.Load()
	if gen == cur.gen {
		return cur.epoch, nil
	}
	var firstErr error
	loaded, failed := 0, 0
	// Disk loads run first — they are the fallible half. An abort after
	// phase one leaves only loaded shards holding the new generation
	// (still serving the old from their previous-store slot); no shard
	// is ever aliased ahead of a failed load.
	for _, loadPhase := range []bool{true, false} {
		for _, c := range cur.nodes {
			if !c.healthy.Load() {
				continue
			}
			load := changed == nil || changed[c.node.Name]
			if load != loadPhase {
				continue
			}
			var err error
			if load {
				err = c.loadGeneration(gen)
			} else {
				err = c.aliasGeneration(gen)
			}
			if err != nil {
				failed++
				if firstErr == nil {
					firstErr = fmt.Errorf("shard %s: %w", c.node.Name, err)
				}
				continue
			}
			c.lastGen.Store(gen)
			loaded++
		}
		if failed > 0 {
			break
		}
	}
	if failed > 0 {
		return 0, fmt.Errorf("cluster: generation %d swap aborted (%d of %d shards failed, all still serving %d): %w",
			gen, failed, loaded+failed, cur.gen, firstErr)
	}
	if loaded == 0 {
		return 0, fmt.Errorf("cluster: generation %d swap: no healthy shard", gen)
	}
	next := &ringState{epoch: cur.epoch + 1, ring: cur.ring, nodes: cur.nodes, gen: gen}
	f.state.Store(next)
	// The old generation's cached labels and absences are unreachable
	// already (cache keys carry the generation); flushing just returns
	// their memory ahead of LRU churn.
	f.labelCache.Flush()
	f.negCache.Flush()
	f.kickRepair()
	return next.epoch, nil
}

// kickRepair wakes the repairer immediately (membership just changed).
func (f *Frontend) kickRepair() {
	if f.rep != nil {
		select {
		case f.rep.kick <- struct{}{}:
		default:
		}
	}
}

// NumLabels estimates the number of distinct labels the cluster holds:
// the per-shard record counts from the last health sweep divided by the
// replication factor. Exact for a complete partitioning (every label
// held by exactly R shards); an estimate while shards are down (their
// last-known count is used) or while repair is filling a joined shard.
func (f *Frontend) NumLabels() int {
	st := f.state.Load()
	var total int64
	for _, c := range st.nodes {
		total += c.lastLabels.Load()
	}
	return int(total) / st.ring.Replication()
}

// LabelCacheStats reports the decoded-label cache's cumulative hit/miss
// counts (the LabelSource contract).
func (f *Frontend) LabelCacheStats() (hits, misses int64) {
	return f.met.labelHits.Load(), f.met.labelMisses.Load()
}

// Health returns a point-in-time shard health snapshot.
func (f *Frontend) Health() []ShardHealth {
	return f.healthAt(f.state.Load())
}

// healthAt builds the snapshot against one pinned ring state, so a
// caller that also derives per-shard data from st (Status's pending-
// delta attribution) indexes the same node list.
func (f *Frontend) healthAt(st *ringState) []ShardHealth {
	out := make([]ShardHealth, len(st.nodes))
	for i, c := range st.nodes {
		h := ShardHealth{
			Name:             c.node.Name,
			Addr:             c.node.Addr,
			Healthy:          c.healthy.Load(),
			Labels:           c.lastLabels.Load(),
			Mismatched:       c.mismatched.Load(),
			Draining:         c.draining.Load(),
			NonAuthoritative: c.lastFlags.Load()&PongNonAuthoritative != 0,
			Generation:       c.lastGen.Load(),
			GenLagged:        c.genLagged.Load(),
		}
		if c.breaker != nil {
			state, _ := c.breaker.snapshot()
			h.Breaker = state.String()
		}
		out[i] = h
	}
	return out
}

// HealthJSON implements the server's optional health-reporting
// interface without the server importing this package.
func (f *Frontend) HealthJSON() any { return f.Health() }

// Label fetches and decodes the label of v, serving repeats from the
// decoded-label cache. The "no label for vertex" error text matches
// labelstore's so upstream error mapping is uniform; unreachable
// replicas surface as a distinct error the server demotes to degraded
// mode for fault labels.
func (f *Frontend) Label(ctx context.Context, v int) (*core.Label, error) {
	return f.labelAt(ctx, f.state.Load(), v)
}

// labelAt is Label against a pinned ring state: cache lookups and the
// scatter both resolve against st's generation, so the answer is
// guaranteed to come from that generation even if a swap flips the
// frontend mid-call.
func (f *Frontend) labelAt(ctx context.Context, st *ringState, v int) (*core.Label, error) {
	if v < 0 || v >= f.n {
		return nil, fmt.Errorf("cluster: no label for vertex %d: out of range [0,%d)", v, f.n)
	}
	if l, ok := f.labelCache.Get(labelKey{st.gen, int32(v)}); ok {
		f.met.labelHits.Add(1)
		return l, nil
	}
	if _, ok := f.negCache.Get(labelKey{st.gen, int32(v)}); ok {
		f.met.negHits.Add(1)
		return nil, fmt.Errorf("cluster: no label for vertex %d", v)
	}
	f.met.labelMisses.Add(1)
	res := f.scatterFetch(ctx, st, []int32{int32(v)})
	r := res[int32(v)]
	switch {
	case r.label != nil:
		return r.label, nil
	case r.absent:
		return nil, fmt.Errorf("cluster: no label for vertex %d", v)
	case r.err != nil:
		return nil, fmt.Errorf("cluster: label for vertex %d unavailable: %w", v, r.err)
	default:
		return nil, fmt.Errorf("cluster: label for vertex %d unavailable", v)
	}
}

// Prefetch warms the label cache for a batch of vertices with one
// scatter-gather across the owning shards — the server calls this with
// {s,t} ∪ F before answering a batch, so the per-label Label calls that
// follow are cache hits. It returns the number of requested vertices
// left unresolved (fetch failures), so the caller can decide whether a
// retry is worth it; the error semantics themselves stay on the
// per-label path.
func (f *Frontend) Prefetch(ctx context.Context, ids []int) int {
	return f.prefetchAt(ctx, f.state.Load(), ids)
}

// prefetchAt is Prefetch against a pinned ring state.
func (f *Frontend) prefetchAt(ctx context.Context, st *ringState, ids []int) int {
	miss := make([]int32, 0, len(ids))
	seen := make(map[int32]struct{}, len(ids))
	for _, v := range ids {
		if v < 0 || v >= f.n {
			continue
		}
		iv := int32(v)
		if _, dup := seen[iv]; dup {
			continue
		}
		seen[iv] = struct{}{}
		if _, ok := f.labelCache.Get(labelKey{st.gen, iv}); ok {
			f.met.labelHits.Add(1)
			continue
		}
		if _, ok := f.negCache.Get(labelKey{st.gen, iv}); ok {
			f.met.negHits.Add(1)
			continue
		}
		f.met.labelMisses.Add(1)
		miss = append(miss, iv)
	}
	if len(miss) == 0 {
		return 0
	}
	unresolved := 0
	for _, r := range f.scatterFetch(ctx, st, miss) {
		if r.err != nil {
			unresolved++
		}
	}
	return unresolved
}

// PinLabels pins label resolution to the frontend's current ring state
// and label generation, returning Label- and Prefetch-shaped closures
// that resolve every vertex against that one generation. The serving
// tier acquires a pin per query batch so a generation swap landing
// mid-batch can never mix labels of two generations inside one decode —
// a mix that is actively unsound: a fault label whose protected balls
// describe the new graph cannot be trusted to guard sketch edges taken
// from an old-generation endpoint label (and vice versa). Shards retain
// the previous generation store precisely so these pinned fetches keep
// completing across the swap.
func (f *Frontend) PinLabels() (func(context.Context, int) (*core.Label, error), func(context.Context, []int) int) {
	st := f.state.Load()
	return func(ctx context.Context, v int) (*core.Label, error) {
			return f.labelAt(ctx, st, v)
		}, func(ctx context.Context, ids []int) int {
			return f.prefetchAt(ctx, st, ids)
		}
}

// fetchResult is the outcome of one vertex's fetch: exactly one of
// label (decoded), absent (authoritative miss from its owner) or err
// (every replica unreachable) is set.
type fetchResult struct {
	label  *core.Label
	absent bool
	err    error
}

// scatterFetch resolves each vertex to its replica chain on st's ring
// and fetches all of them concurrently, one RPC per involved shard per
// round. Failed attempts advance to the next replica, spending the
// retry budget; the hedge timer duplicates still-inflight work to the
// next replica once, also on budget. Successes (and authoritative
// misses) land in the caches under st's generation. The caller passes
// one pinned ring state, so a concurrent membership or generation swap
// never splits one fetch across rings or generations.
func (f *Frontend) scatterFetch(ctx context.Context, st *ringState, ids []int32) map[int32]fetchResult {
	out := make(map[int32]fetchResult, len(ids))
	type pendState struct {
		owners   []int
		next     int // next owner index to try
		inflight int // outstanding RPCs covering this id
	}
	pending := make(map[int32]*pendState, len(ids))
	ownerBuf := make([]int, 0, 8)
	maxCalls := 0
	for _, v := range ids {
		ownerBuf = st.ring.Owners(v, ownerBuf[:0])
		pending[v] = &pendState{owners: slices.Clone(ownerBuf)}
		maxCalls += len(ownerBuf) + 1
	}

	type groupResp struct {
		ids  []int32
		recs map[int32]LabelRecord
		err  error
	}
	// Buffered so abandoned calls (context cancel) never block their
	// goroutines.
	respCh := make(chan groupResp, maxCalls)
	inflightCalls := 0

	// chooseOwner picks the first routable untried owner — healthy, not
	// draining, breaker willing — falling back to the first untried one
	// when none qualify: a probe may be stale, and that leaked request
	// doubles as a recovery probe for an open breaker. Returns -1 when
	// the chain is exhausted.
	chooseOwner := func(ps *pendState) int {
		now := time.Now()
		for i := ps.next; i < len(ps.owners); i++ {
			c := st.nodes[ps.owners[i]]
			if c.healthy.Load() && !c.draining.Load() &&
				(c.breaker == nil || c.breaker.allow(now)) {
				return i
			}
		}
		if ps.next < len(ps.owners) {
			return ps.next
		}
		return -1
	}

	launch := func(hedge bool) {
		groups := make(map[int][]int32)
		for v, ps := range pending {
			if hedge != (ps.inflight > 0) {
				// Normal rounds (re)launch idle ids; the hedge round
				// duplicates in-flight ones.
				continue
			}
			if ps.next == 0 && !hedge {
				// First attempt for this id: free, and it funds the budget.
				if f.budget != nil {
					f.budget.earn()
				}
			} else {
				// Retry (replica advance) or hedge: costs a token. A denied
				// retry exhausts the chain — failing fast is the point of
				// the budget; a denied hedge just leaves the primary
				// attempt in flight.
				if f.budget != nil && !f.budget.spend() {
					f.met.budgetDenied.Add(1)
					if !hedge {
						ps.next = len(ps.owners)
					}
					continue
				}
				f.met.budgetSpent.Add(1)
				if !hedge {
					f.met.retries.Add(1)
				}
			}
			idx := chooseOwner(ps)
			if idx < 0 {
				continue
			}
			if ps.next == 0 && idx > 0 {
				f.met.failovers.Add(1)
			}
			ps.next = idx + 1
			ps.inflight++
			groups[ps.owners[idx]] = append(groups[ps.owners[idx]], v)
		}
		for node, gids := range groups {
			inflightCalls++
			f.met.fetchCalls.Add(1)
			if hedge {
				f.met.hedges.Add(1)
			}
			go func(c *shardClient, gids []int32) {
				recs, err := c.getLabels(ctx, gids, f.n, st.gen)
				// Feed the breaker fetch outcomes, except failures caused
				// by our own context ending — those say nothing about the
				// shard.
				if c.breaker != nil && (err == nil || ctx.Err() == nil) {
					c.breaker.record(time.Now(), err == nil)
				}
				respCh <- groupResp{ids: gids, recs: recs, err: err}
			}(st.nodes[node], gids)
		}
	}

	launch(false)
	var hedgeC <-chan time.Time
	if f.cfg.HedgeDelay > 0 && inflightCalls > 0 {
		tm := time.NewTimer(f.cfg.HedgeDelay)
		defer tm.Stop()
		hedgeC = tm.C
	}
	// Return as soon as every id is resolved: a hedged win must not wait
	// for the slow call it raced (the buffered channel lets stragglers
	// finish without blocking).
	for len(pending) > 0 && inflightCalls > 0 {
		select {
		case r := <-respCh:
			inflightCalls--
			for _, v := range r.ids {
				ps, ok := pending[v]
				if !ok {
					continue // already resolved by a racing attempt
				}
				ps.inflight--
				if r.err != nil {
					continue
				}
				rec, ok := r.recs[v]
				if !ok {
					continue // shard skipped it; treat as a failed attempt
				}
				if rec.Unknown {
					// Salvage-lost (or bootstrap) on that replica: not an
					// authoritative absence, so treat it like a failed
					// attempt and let the relaunch below advance to the next
					// replica. Crucially it must NOT enter the negative
					// cache — intact replicas may still hold the label. It
					// is, however, a repair hint: that replica is missing a
					// record it should own.
					f.noteUnknown(v)
					continue
				}
				// Cache under the generation this scatter is pinned to.
				// A fetch racing a generation swap used to guard its Put
				// with a "still the active generation?" check, but that
				// check-then-put could lose the race to the swap's
				// flip-and-flush and poison the fresh cache with an
				// old-generation label. With generation-keyed entries the
				// put is always safe: a stale scatter's answer lands under
				// the old generation's key, which nothing reads anymore.
				if !rec.Present {
					f.negCache.Put(labelKey{st.gen, v}, struct{}{})
					out[v] = fetchResult{absent: true}
					delete(pending, v)
					continue
				}
				l, derr := core.DecodeLabel(rec.Data, rec.Bits)
				if derr != nil {
					continue // corrupt copy; another replica may be intact
				}
				f.labelCache.Put(labelKey{st.gen, v}, l)
				out[v] = fetchResult{label: l}
				delete(pending, v)
			}
			launch(false)
		case <-hedgeC:
			hedgeC = nil
			launch(true)
		case <-ctx.Done():
			for v := range pending {
				out[v] = fetchResult{err: ctx.Err()}
			}
			return out
		}
	}
	for v := range pending {
		f.met.unavailable.Add(1)
		out[v] = fetchResult{err: fmt.Errorf("all %d replicas unreachable", st.ring.Replication())}
	}
	return out
}

// noteUnknown records a repair hint: some replica answered Unknown for
// v, meaning it should own the record but cannot serve it.
func (f *Frontend) noteUnknown(v int32) {
	if f.rep != nil {
		f.rep.noteUnknown(v)
	}
}

// learnedN returns the vertex space reported by any healthy shard.
func (f *Frontend) learnedN(st *ringState) (int, bool) {
	for _, c := range st.nodes {
		if c.healthy.Load() && c.lastN.Load() > 0 {
			return int(c.lastN.Load()), true
		}
	}
	return 0, false
}

func (f *Frontend) healthLoop() {
	defer f.done.Done()
	for {
		// ±20% jitter: a fleet of frontends (or a frontend and a fleet of
		// repairers) must not probe every shard at the same instant.
		t := time.NewTimer(backoff.Jittered(f.cfg.HealthInterval, 0.2))
		select {
		case <-f.stop:
			t.Stop()
			return
		case <-t.C:
			f.sweepHealth()
		}
	}
}

// sweepHealth pings every shard in parallel and updates their health
// bits and vitals. A shard that answers but reports a different vertex
// space than the cluster's is serving a partition from a different
// store: it is excluded from routing (every fetch to it would fail the
// per-call n check anyway) and flagged mismatched so the
// misconfiguration surfaces in /metrics instead of as per-fetch
// transient errors.
func (f *Frontend) sweepHealth() {
	st := f.state.Load()
	var wg sync.WaitGroup
	for _, c := range st.nodes {
		wg.Add(1)
		go func(c *shardClient) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), f.cfg.HealthTimeout)
			defer cancel()
			n, labels, flags, gen, err := c.ping(ctx)
			if err != nil {
				c.healthy.Store(false)
				return
			}
			c.lastN.Store(int64(n))
			c.lastLabels.Store(int64(labels))
			c.lastFlags.Store(flags)
			c.lastGen.Store(gen)
			if f.n > 0 && n != f.n {
				c.mismatched.Store(true)
				c.healthy.Store(false)
				return
			}
			c.mismatched.Store(false)
			// Re-read the state: a swap may have flipped the generation
			// since this sweep loaded st, and catching a shard "up" to a
			// stale generation would only make it flap.
			if want := f.state.Load().gen; want > 0 && gen != want {
				// The shard lags the cluster's generation (it was down
				// during a swap, or restarted onto an older one). Try to
				// catch it up in place from its generation root; until it
				// holds the active generation it must not take traffic.
				if err := c.loadGeneration(want); err != nil {
					c.genLagged.Store(true)
					c.healthy.Store(false)
					return
				}
				c.lastGen.Store(want)
			}
			c.genLagged.Store(false)
			c.healthy.Store(true)
		}(c)
	}
	wg.Wait()
}

// shardClient is the frontend's stub for one shard: a small idle
// connection pool, health and breaker state, and per-shard metrics.
// Clients survive membership epochs — a swap reuses the same object for
// a surviving shard, so its pool, health history and breaker state
// carry over.
type shardClient struct {
	node Node
	cfg  FrontendConfig

	mu   sync.Mutex
	idle []net.Conn

	healthy    atomic.Bool
	mismatched atomic.Bool
	draining   atomic.Bool
	genLagged  atomic.Bool
	lastN      atomic.Int64
	lastLabels atomic.Int64
	lastFlags  atomic.Uint64
	lastGen    atomic.Uint64

	breaker *breaker // nil when disabled

	fetches     atomic.Int64
	fetchErrors atomic.Int64
	latency     *stats.Histogram
}

func newShardClient(nd Node, cfg FrontendConfig) *shardClient {
	c := &shardClient{
		node: nd,
		cfg:  cfg,
		// Seconds; spans same-host RPCs to cross-zone hops and timeouts.
		latency: stats.NewHistogram(
			0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
			0.025, 0.05, 0.1, 0.25, 0.5, 1),
	}
	if !cfg.BreakerDisabled {
		c.breaker = newBreaker(breakerConfig{
			window:       cfg.BreakerWindow,
			buckets:      cfg.BreakerBuckets,
			minRequests:  cfg.BreakerMinRequests,
			failureRatio: cfg.BreakerFailureRatio,
			cooldown:     cfg.BreakerCooldown,
			maxCooldown:  cfg.BreakerMaxCooldown,
		})
	}
	return c
}

// maxRequestIDs bounds the ids carried by one OpGetLabels frame, so a
// request payload stays far below MaxFramePayload no matter how large a
// prefetch gets (≤5 bytes per id ≈ 320 KiB at this cap). A var so tests
// can shrink it to force chunking.
var maxRequestIDs = 1 << 16

// getLabels fetches a batch of label records, validating that the shard
// serves the expected vertex space. gen > 0 tags the request with the
// caller's label generation so a shard mid-swap answers from the
// matching store (or refuses) instead of silently mixing generations.
// Batches past maxRequestIDs split into sequential RPCs; responses may
// arrive chunked (OpLabelsPart… OpLabels) and are merged here.
func (c *shardClient) getLabels(ctx context.Context, ids []int32, wantN int, gen uint64) (map[int32]LabelRecord, error) {
	out := make(map[int32]LabelRecord, len(ids))
	for len(ids) > 0 {
		chunk := ids
		if len(chunk) > maxRequestIDs {
			chunk = chunk[:maxRequestIDs]
		}
		ids = ids[len(chunk):]
		if err := c.getLabelsChunk(ctx, chunk, wantN, gen, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (c *shardClient) getLabelsChunk(ctx context.Context, ids []int32, wantN int, gen uint64, out map[int32]LabelRecord) error {
	c.fetches.Add(1)
	start := time.Now()
	op, payload := OpGetLabels, AppendLabelRequest(nil, ids)
	if gen > 0 {
		op, payload = OpGetLabelsGen, AppendGenLabelRequest(nil, gen, ids)
	}
	// Every response chunk carries at least one record, so a well-behaved
	// shard sends at most len(ids) continuation frames plus the final one.
	frames, err := c.call(ctx, op, payload, len(ids)+1)
	c.latency.Observe(time.Since(start).Seconds())
	if err != nil {
		c.fetchErrors.Add(1)
		return err
	}
	for _, fr := range frames {
		switch fr.op {
		case OpLabels, OpLabelsPart:
			n, recs, err := ParseLabelResponse(fr.payload)
			if err != nil {
				c.fetchErrors.Add(1)
				return err
			}
			if n != wantN {
				c.fetchErrors.Add(1)
				return fmt.Errorf("cluster: shard %s serves vertex space %d, want %d", c.node.Name, n, wantN)
			}
			for _, r := range recs {
				out[r.Vertex] = r
			}
		case OpError:
			c.fetchErrors.Add(1)
			return fmt.Errorf("%w: %s", errShardError, fr.payload)
		default:
			c.fetchErrors.Add(1)
			return fmt.Errorf("cluster: unexpected response op %d", fr.op)
		}
	}
	return nil
}

// ping probes the shard and returns its vitals.
func (c *shardClient) ping(ctx context.Context) (n, labels int, flags, generation uint64, err error) {
	frames, err := c.call(ctx, OpPing, nil, 1)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if frames[0].op != OpPong {
		return 0, 0, 0, 0, fmt.Errorf("cluster: unexpected ping response op %d", frames[0].op)
	}
	return parsePongChecked(frames[0].payload)
}

func parsePongChecked(resp []byte) (n, labels int, flags, generation uint64, err error) {
	n, labels, flags, generation, err = ParsePong(resp)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if n <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("cluster: pong reports empty vertex space")
	}
	return n, labels, flags, generation, nil
}

// loadGeneration tells the shard to activate a label generation from
// its generation root, confirming the activated id.
func (c *shardClient) loadGeneration(gen uint64) error {
	return c.generationOp(OpLoadGeneration, gen, genLoadTimeout)
}

// aliasGeneration tells the shard to re-tag its current store as gen —
// the no-disk half of a scoped swap, used for shards whose partition an
// incremental compaction left byte-identical. In-memory on the shard,
// so it gets a fetch-sized leash rather than a load-sized one.
func (c *shardClient) aliasGeneration(gen uint64) error {
	return c.generationOp(OpAliasGeneration, gen, c.cfg.FetchTimeout)
}

func (c *shardClient) generationOp(op byte, gen uint64, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	frames, err := c.callTimeout(ctx, op, AppendGeneration(nil, gen), 1, timeout)
	if err != nil {
		return err
	}
	switch frames[0].op {
	case OpGenLoaded:
		got, err := ParseGeneration(frames[0].payload)
		if err != nil {
			return err
		}
		if got != gen {
			return fmt.Errorf("cluster: shard %s activated generation %d, want %d", c.node.Name, got, gen)
		}
		return nil
	case OpError:
		return fmt.Errorf("%w: %s", errShardError, frames[0].payload)
	default:
		return fmt.Errorf("cluster: unexpected load-generation response op %d", frames[0].op)
	}
}

// wireFrame is one response frame as received off the wire.
type wireFrame struct {
	op      byte
	payload []byte
}

// call performs one request/response exchange, reusing a pooled
// connection when one is idle. A response may span several frames
// (OpLabelsPart continuations closed by a non-continuation frame);
// maxFrames bounds how many the peer may send. A stale pooled
// connection (closed by the peer between calls) is retried once on a
// fresh dial; any other transport failure marks the shard unhealthy
// until the next successful probe.
func (c *shardClient) call(ctx context.Context, op byte, payload []byte, maxFrames int) ([]wireFrame, error) {
	return c.callTimeout(ctx, op, payload, maxFrames, c.cfg.FetchTimeout)
}

// callTimeout is call with an explicit per-RPC timeout, for exchanges
// whose budget differs from a label fetch (repair pulls stream data and
// pace themselves, so they get a far longer leash).
func (c *shardClient) callTimeout(ctx context.Context, op byte, payload []byte, maxFrames int, timeout time.Duration) ([]wireFrame, error) {
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for attempt := 0; ; attempt++ {
		conn, pooled, err := c.getConn(deadline)
		if err != nil {
			c.healthy.Store(false)
			return nil, err
		}
		conn.SetDeadline(deadline)
		frames, err := roundTrip(conn, op, payload, maxFrames)
		if err != nil {
			conn.Close()
			if pooled && attempt == 0 {
				continue // stale pooled conn; one retry on a fresh dial
			}
			c.healthy.Store(false)
			return nil, err
		}
		conn.SetDeadline(time.Time{})
		c.putConn(conn)
		return frames, nil
	}
}

func roundTrip(conn net.Conn, op byte, payload []byte, maxFrames int) ([]wireFrame, error) {
	if err := WriteFrame(conn, op, payload); err != nil {
		return nil, err
	}
	var frames []wireFrame
	for {
		rop, p, err := ReadFrame(conn)
		if err != nil {
			return nil, err
		}
		frames = append(frames, wireFrame{op: rop, payload: p})
		if rop != OpLabelsPart {
			return frames, nil
		}
		if len(frames) >= maxFrames {
			return nil, fmt.Errorf("cluster: response exceeded %d frames", maxFrames)
		}
	}
}

func (c *shardClient) getConn(deadline time.Time) (conn net.Conn, pooled bool, err error) {
	c.mu.Lock()
	if n := len(c.idle); n > 0 {
		conn = c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, true, nil
	}
	c.mu.Unlock()
	timeout := c.cfg.DialTimeout
	if until := time.Until(deadline); until < timeout {
		timeout = until
	}
	if timeout <= 0 {
		return nil, false, context.DeadlineExceeded
	}
	conn, err = net.DialTimeout("tcp", c.node.Addr, timeout)
	return conn, false, err
}

func (c *shardClient) putConn(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.idle) >= c.cfg.MaxIdleConns {
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
}

func (c *shardClient) closeIdle() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
}
