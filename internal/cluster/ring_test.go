package cluster

import (
	"fmt"
	"strings"
	"testing"
)

func testNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Name: fmt.Sprintf("shard%d", i), Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i)}
	}
	return nodes
}

func TestParseMembership(t *testing.T) {
	m, err := ParseMembership(strings.NewReader(`
# cluster of three
replication 2
shard0 127.0.0.1:9000
shard1 127.0.0.1:9001

shard2 127.0.0.1:9002
`))
	if err != nil {
		t.Fatalf("ParseMembership: %v", err)
	}
	if m.Replication != 2 || len(m.Nodes) != 3 {
		t.Fatalf("got R=%d nodes=%d", m.Replication, len(m.Nodes))
	}
	if m.Nodes[1].Name != "shard1" || m.Nodes[1].Addr != "127.0.0.1:9001" {
		t.Fatalf("node 1 parsed as %+v", m.Nodes[1])
	}

	for _, bad := range []string{
		"",                                   // no nodes
		"replication 0\na 1:1",               // bad R
		"replication 4\na 1:1\nb 1:2",        // R > nodes
		"a 1:1\na 1:2",                       // duplicate name
		"a 1:1\nreplication 2\nb 1:2\nc 1:3", // directive after nodes
		"a 1:1 extra",                        // malformed line
	} {
		if _, err := ParseMembership(strings.NewReader(bad)); err == nil {
			t.Errorf("membership %q accepted", bad)
		}
	}
}

func TestRingOwnersDistinctAndDeterministic(t *testing.T) {
	nodes := testNodes(5)
	rg := NewRing(nodes, 3)
	rg2 := NewRing(nodes, 3)
	var owners, owners2 []int
	for v := int32(0); v < 2000; v++ {
		owners = rg.Owners(v, owners[:0])
		owners2 = rg2.Owners(v, owners2[:0])
		if len(owners) != 3 {
			t.Fatalf("vertex %d: %d owners, want 3", v, len(owners))
		}
		seen := map[int]bool{}
		for _, nd := range owners {
			if nd < 0 || nd >= len(nodes) || seen[nd] {
				t.Fatalf("vertex %d: bad owner set %v", v, owners)
			}
			seen[nd] = true
		}
		for i := range owners {
			if owners[i] != owners2[i] {
				t.Fatalf("vertex %d: nondeterministic owners %v vs %v", v, owners, owners2)
			}
		}
		if owners[0] != rg.Primary(v) {
			t.Fatalf("vertex %d: Primary %d disagrees with Owners[0] %d", v, rg.Primary(v), owners[0])
		}
	}
}

func TestRingBalance(t *testing.T) {
	// With 64 virtual nodes the worst shard should stay within ~2× fair
	// share on a 3-node ring — a loose bound that catches a broken hash
	// or an unsorted ring without flaking on hash luck.
	rg := NewRing(testNodes(3), 1)
	const n = 30000
	counts := make([]int, 3)
	for v := int32(0); v < n; v++ {
		counts[rg.Primary(v)]++
	}
	for i, c := range counts {
		if c < n/6 || c > n/2+n/10 {
			t.Fatalf("shard %d owns %d of %d vertices (counts %v): ring badly unbalanced", i, c, n, counts)
		}
	}
}

func TestRingConsistency(t *testing.T) {
	// Removing one node only remaps vertices that node owned: every
	// vertex whose primary survives keeps its primary — the property
	// that makes rebalancing move |lost shard| labels, not all of them.
	all := testNodes(4)
	rgAll := NewRing(all, 1)
	rgLess := NewRing(all[:3], 1) // shard3 removed
	moved := 0
	const n = 10000
	for v := int32(0); v < n; v++ {
		pAll := rgAll.Primary(v)
		pLess := rgLess.Primary(v)
		if pAll == 3 {
			moved++
			continue // owner lost; any new primary is fine
		}
		if pAll != pLess {
			t.Fatalf("vertex %d moved %d→%d though its primary survived", v, pAll, pLess)
		}
	}
	if moved == 0 || moved == n {
		t.Fatalf("implausible remap count %d of %d", moved, n)
	}
}

func TestRingPartitionCoversWithReplication(t *testing.T) {
	rg := NewRing(testNodes(3), 2)
	const n = 500
	parts := rg.Partition(n)
	held := make([]int, n)
	for nd, vs := range parts {
		last := -1
		for _, v := range vs {
			if v <= last {
				t.Fatalf("node %d partition not sorted/unique at %d", nd, v)
			}
			last = v
			held[v]++
		}
	}
	for v, c := range held {
		if c != 2 {
			t.Fatalf("vertex %d held by %d shards, want R=2", v, c)
		}
	}
}

func TestRingReplicationClamped(t *testing.T) {
	rg := NewRing(testNodes(2), 5)
	if rg.Replication() != 2 {
		t.Fatalf("replication clamped to %d, want 2", rg.Replication())
	}
	owners := rg.Owners(7, nil)
	if len(owners) != 2 {
		t.Fatalf("%d owners, want 2", len(owners))
	}
}
