package cluster

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// frontendMetrics is the cluster-wide observability state of a
// Frontend; per-shard counters and latency histograms live on each
// shardClient. Everything is lock-free on the fetch path.
type frontendMetrics struct {
	// labelHits/labelMisses count decoded-label cache lookups; negHits
	// counts confirmed-absence short-circuits.
	labelHits   atomic.Int64
	labelMisses atomic.Int64
	negHits     atomic.Int64

	// fetchCalls counts label-fetch RPCs issued (the hedge-rate
	// denominator); hedges counts the duplicates launched by the hedge
	// timer; failovers counts fetches routed away from an unhealthy
	// primary; unavailable counts label requests that exhausted every
	// replica.
	fetchCalls  atomic.Int64
	hedges      atomic.Int64
	failovers   atomic.Int64
	unavailable atomic.Int64

	// retries counts per-vertex relaunches after a failed attempt (the
	// retry budget's spend unit, together with hedged vertices);
	// budgetSpent/budgetDenied count retry-budget tokens taken and
	// refusals.
	retries      atomic.Int64
	budgetSpent  atomic.Int64
	budgetDenied atomic.Int64
}

// WriteMetrics renders the frontend's Prometheus text exposition,
// cluster-wide counters first, then per-shard health, breaker state,
// counters and fetch-latency histograms, then repair progress. The
// server's /metrics endpoint appends this to its own exposition when
// serving in cluster mode.
func (f *Frontend) WriteMetrics(sb *strings.Builder) {
	st := f.state.Load()
	m := &f.met
	counter := func(name, help string, v int64) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("fsdl_cluster_ring_epoch", "Current membership epoch (bumped by join/leave/drain/swap).", float64(st.epoch))
	gauge("fsdl_cluster_generation", "Label generation the frontend routes against.", float64(st.gen))
	counter("fsdl_cluster_label_cache_hits_total", "Frontend decoded-label cache hits.", m.labelHits.Load())
	counter("fsdl_cluster_label_cache_misses_total", "Frontend decoded-label cache misses (scatter-gather issued).", m.labelMisses.Load())
	hits, misses := m.labelHits.Load(), m.labelMisses.Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	gauge("fsdl_cluster_label_cache_hit_rate", "Frontend label-cache hit fraction.", rate)
	counter("fsdl_cluster_negative_cache_hits_total", "Lookups short-circuited by the confirmed-absence cache.", m.negHits.Load())

	counter("fsdl_cluster_fetch_calls_total", "Label-fetch RPCs issued to shards (hedges included).", m.fetchCalls.Load())
	counter("fsdl_cluster_hedges_total", "Duplicate fetches launched at replicas by the hedge timer.", m.hedges.Load())
	hedgeRate := 0.0
	if calls := m.fetchCalls.Load(); calls > 0 {
		hedgeRate = float64(m.hedges.Load()) / float64(calls)
	}
	gauge("fsdl_cluster_hedge_rate", "Fraction of fetch RPCs that were hedges.", hedgeRate)
	counter("fsdl_cluster_failovers_total", "Fetches routed away from an unhealthy primary.", m.failovers.Load())
	counter("fsdl_cluster_retries_total", "Per-vertex fetch relaunches after a failed attempt.", m.retries.Load())
	counter("fsdl_cluster_unavailable_labels_total", "Label requests that exhausted every replica (degraded-mode trigger).", m.unavailable.Load())

	if f.budget != nil {
		gauge("fsdl_cluster_retry_budget_tokens", "Retry-budget tokens currently available.", f.budget.level())
		counter("fsdl_cluster_retry_budget_spent_total", "Retry-budget tokens spent on retries and hedges.", m.budgetSpent.Load())
		counter("fsdl_cluster_retry_budget_denied_total", "Retries/hedges refused because the budget was exhausted.", m.budgetDenied.Load())
	}

	fmt.Fprintf(sb, "# HELP fsdl_cluster_shard_healthy Shard health as seen by the frontend (1 up, 0 down).\n# TYPE fsdl_cluster_shard_healthy gauge\n")
	for _, c := range st.nodes {
		up := 0
		if c.healthy.Load() {
			up = 1
		}
		fmt.Fprintf(sb, "fsdl_cluster_shard_healthy{shard=%q} %d\n", c.node.Name, up)
	}
	fmt.Fprintf(sb, "# HELP fsdl_cluster_shard_mismatched Reachable shards excluded from routing because their vertex space disagrees with the cluster (partition from a different store).\n# TYPE fsdl_cluster_shard_mismatched gauge\n")
	for _, c := range st.nodes {
		bad := 0
		if c.mismatched.Load() {
			bad = 1
		}
		fmt.Fprintf(sb, "fsdl_cluster_shard_mismatched{shard=%q} %d\n", c.node.Name, bad)
	}
	fmt.Fprintf(sb, "# HELP fsdl_cluster_shard_generation Label generation each shard last reported serving.\n# TYPE fsdl_cluster_shard_generation gauge\n")
	for _, c := range st.nodes {
		fmt.Fprintf(sb, "fsdl_cluster_shard_generation{shard=%q} %d\n", c.node.Name, c.lastGen.Load())
	}
	fmt.Fprintf(sb, "# HELP fsdl_cluster_shard_draining Shards administratively excluded from routing (1 draining).\n# TYPE fsdl_cluster_shard_draining gauge\n")
	for _, c := range st.nodes {
		d := 0
		if c.draining.Load() {
			d = 1
		}
		fmt.Fprintf(sb, "fsdl_cluster_shard_draining{shard=%q} %d\n", c.node.Name, d)
	}
	hasBreakers := false
	for _, c := range st.nodes {
		if c.breaker != nil {
			hasBreakers = true
			break
		}
	}
	if hasBreakers {
		fmt.Fprintf(sb, "# HELP fsdl_cluster_breaker_state Circuit-breaker position per shard (0 closed, 1 open, 2 half-open).\n# TYPE fsdl_cluster_breaker_state gauge\n")
		for _, c := range st.nodes {
			if c.breaker == nil {
				continue
			}
			state, _ := c.breaker.snapshot()
			fmt.Fprintf(sb, "fsdl_cluster_breaker_state{shard=%q} %d\n", c.node.Name, int(state))
		}
		fmt.Fprintf(sb, "# HELP fsdl_cluster_breaker_opens_total Times each shard's circuit breaker opened.\n# TYPE fsdl_cluster_breaker_opens_total counter\n")
		for _, c := range st.nodes {
			if c.breaker == nil {
				continue
			}
			_, opens := c.breaker.snapshot()
			fmt.Fprintf(sb, "fsdl_cluster_breaker_opens_total{shard=%q} %d\n", c.node.Name, opens)
		}
	}
	fmt.Fprintf(sb, "# HELP fsdl_cluster_shard_fetches_total Fetch RPCs sent per shard.\n# TYPE fsdl_cluster_shard_fetches_total counter\n")
	for _, c := range st.nodes {
		fmt.Fprintf(sb, "fsdl_cluster_shard_fetches_total{shard=%q} %d\n", c.node.Name, c.fetches.Load())
	}
	fmt.Fprintf(sb, "# HELP fsdl_cluster_shard_fetch_errors_total Fetch RPCs that failed per shard.\n# TYPE fsdl_cluster_shard_fetch_errors_total counter\n")
	for _, c := range st.nodes {
		fmt.Fprintf(sb, "fsdl_cluster_shard_fetch_errors_total{shard=%q} %d\n", c.node.Name, c.fetchErrors.Load())
	}
	fmt.Fprintf(sb, "# HELP fsdl_cluster_fetch_seconds Per-shard label-fetch latency.\n# TYPE fsdl_cluster_fetch_seconds histogram\n")
	for _, c := range st.nodes {
		for _, b := range c.latency.Buckets() {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = fmt.Sprintf("%g", b.UpperBound)
			}
			fmt.Fprintf(sb, "fsdl_cluster_fetch_seconds_bucket{shard=%q,le=%q} %d\n", c.node.Name, le, b.CumulativeCount)
		}
		fmt.Fprintf(sb, "fsdl_cluster_fetch_seconds_sum{shard=%q} %g\n", c.node.Name, c.latency.Sum())
		fmt.Fprintf(sb, "fsdl_cluster_fetch_seconds_count{shard=%q} %d\n", c.node.Name, c.latency.Count())
	}

	if f.rep != nil {
		rs := f.rep.status()
		counter("fsdl_cluster_repair_sweeps_total", "Completed anti-entropy sweeps.", rs.Sweeps)
		counter("fsdl_cluster_repair_records_total", "Records installed by repair pulls.", rs.Repaired)
		counter("fsdl_cluster_repair_sealed_shards_total", "Shards restored to authority after a clean audit.", rs.Sealed)
		gauge("fsdl_cluster_repair_backlog", "Records known missing after the last sweep.", float64(rs.Backlog))
		converged := 0.0
		if rs.Converged {
			converged = 1
		}
		gauge("fsdl_cluster_repair_converged", "1 when the last sweep found every shard complete.", converged)
	}
}
