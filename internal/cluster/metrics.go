package cluster

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// frontendMetrics is the cluster-wide observability state of a
// Frontend; per-shard counters and latency histograms live on each
// shardClient. Everything is lock-free on the fetch path.
type frontendMetrics struct {
	// labelHits/labelMisses count decoded-label cache lookups; negHits
	// counts confirmed-absence short-circuits.
	labelHits   atomic.Int64
	labelMisses atomic.Int64
	negHits     atomic.Int64

	// fetchCalls counts label-fetch RPCs issued (the hedge-rate
	// denominator); hedges counts the duplicates launched by the hedge
	// timer; failovers counts fetches routed away from an unhealthy
	// primary; unavailable counts label requests that exhausted every
	// replica.
	fetchCalls  atomic.Int64
	hedges      atomic.Int64
	failovers   atomic.Int64
	unavailable atomic.Int64
}

// WriteMetrics renders the frontend's Prometheus text exposition,
// cluster-wide counters first, then per-shard health, counters and
// fetch-latency histograms. The server's /metrics endpoint appends this
// to its own exposition when serving in cluster mode.
func (f *Frontend) WriteMetrics(sb *strings.Builder) {
	m := &f.met
	counter := func(name, help string, v int64) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("fsdl_cluster_label_cache_hits_total", "Frontend decoded-label cache hits.", m.labelHits.Load())
	counter("fsdl_cluster_label_cache_misses_total", "Frontend decoded-label cache misses (scatter-gather issued).", m.labelMisses.Load())
	hits, misses := m.labelHits.Load(), m.labelMisses.Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(sb, "# HELP fsdl_cluster_label_cache_hit_rate Frontend label-cache hit fraction.\n# TYPE fsdl_cluster_label_cache_hit_rate gauge\nfsdl_cluster_label_cache_hit_rate %g\n", rate)
	counter("fsdl_cluster_negative_cache_hits_total", "Lookups short-circuited by the confirmed-absence cache.", m.negHits.Load())

	counter("fsdl_cluster_fetch_calls_total", "Label-fetch RPCs issued to shards (hedges included).", m.fetchCalls.Load())
	counter("fsdl_cluster_hedges_total", "Duplicate fetches launched at replicas by the hedge timer.", m.hedges.Load())
	hedgeRate := 0.0
	if calls := m.fetchCalls.Load(); calls > 0 {
		hedgeRate = float64(m.hedges.Load()) / float64(calls)
	}
	fmt.Fprintf(sb, "# HELP fsdl_cluster_hedge_rate Fraction of fetch RPCs that were hedges.\n# TYPE fsdl_cluster_hedge_rate gauge\nfsdl_cluster_hedge_rate %g\n", hedgeRate)
	counter("fsdl_cluster_failovers_total", "Fetches routed away from an unhealthy primary.", m.failovers.Load())
	counter("fsdl_cluster_unavailable_labels_total", "Label requests that exhausted every replica (degraded-mode trigger).", m.unavailable.Load())

	fmt.Fprintf(sb, "# HELP fsdl_cluster_shard_healthy Shard health as seen by the frontend (1 up, 0 down).\n# TYPE fsdl_cluster_shard_healthy gauge\n")
	for _, c := range f.nodes {
		up := 0
		if c.healthy.Load() {
			up = 1
		}
		fmt.Fprintf(sb, "fsdl_cluster_shard_healthy{shard=%q} %d\n", c.node.Name, up)
	}
	fmt.Fprintf(sb, "# HELP fsdl_cluster_shard_mismatched Reachable shards excluded from routing because their vertex space disagrees with the cluster (partition from a different store).\n# TYPE fsdl_cluster_shard_mismatched gauge\n")
	for _, c := range f.nodes {
		bad := 0
		if c.mismatched.Load() {
			bad = 1
		}
		fmt.Fprintf(sb, "fsdl_cluster_shard_mismatched{shard=%q} %d\n", c.node.Name, bad)
	}
	fmt.Fprintf(sb, "# HELP fsdl_cluster_shard_fetches_total Fetch RPCs sent per shard.\n# TYPE fsdl_cluster_shard_fetches_total counter\n")
	for _, c := range f.nodes {
		fmt.Fprintf(sb, "fsdl_cluster_shard_fetches_total{shard=%q} %d\n", c.node.Name, c.fetches.Load())
	}
	fmt.Fprintf(sb, "# HELP fsdl_cluster_shard_fetch_errors_total Fetch RPCs that failed per shard.\n# TYPE fsdl_cluster_shard_fetch_errors_total counter\n")
	for _, c := range f.nodes {
		fmt.Fprintf(sb, "fsdl_cluster_shard_fetch_errors_total{shard=%q} %d\n", c.node.Name, c.fetchErrors.Load())
	}
	fmt.Fprintf(sb, "# HELP fsdl_cluster_fetch_seconds Per-shard label-fetch latency.\n# TYPE fsdl_cluster_fetch_seconds histogram\n")
	for _, c := range f.nodes {
		for _, b := range c.latency.Buckets() {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = fmt.Sprintf("%g", b.UpperBound)
			}
			fmt.Fprintf(sb, "fsdl_cluster_fetch_seconds_bucket{shard=%q,le=%q} %d\n", c.node.Name, le, b.CumulativeCount)
		}
		fmt.Fprintf(sb, "fsdl_cluster_fetch_seconds_sum{shard=%q} %g\n", c.node.Name, c.latency.Sum())
		fmt.Fprintf(sb, "fsdl_cluster_fetch_seconds_count{shard=%q} %d\n", c.node.Name, c.latency.Count())
	}
}
