package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"os"
	"path/filepath"
	"testing"

	"fsdl/internal/labelstore"
)

// writeFormat3Store saves st's records as an FSDL3 container at path.
func writeFormat3Store(t *testing.T, st *labelstore.Store, path string, compress bool) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	err = st.SaveVerticesFormat3(f, st.Vertices(), compress)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
}

// corruptFirstRecord flips one byte of the first record payload in an
// FSDL3 file and returns the vertex that record belongs to. The header
// and index stay intact, so a strict Open succeeds and the damage is
// only discoverable through the lazy per-record CRC.
func corruptFirstRecord(t *testing.T, path string) int {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Header: dataOff is the u64 at byte 24; the index starts at 4096
	// with the record's vertex in the entry's first u32. The first
	// entry's payload sits at dataOff (entries store data-relative
	// offsets, and the first record's is 0).
	dataOff := binary.LittleEndian.Uint64(buf[24:])
	victim := int(binary.LittleEndian.Uint32(buf[4096:]))
	buf[dataOff] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return victim
}

// TestShardServesCorruptFSDL3AsUnknown: a damaged record in an mmap'd
// FSDL3 partition must come back as the Unknown state (absence due to
// damage is not authoritative), the shard's pong must carry the
// non-authoritative flag, and every intact record must still serve the
// exact canonical bytes.
func TestShardServesCorruptFSDL3AsUnknown(t *testing.T) {
	_, st := buildFullStore(t, 6) // n = 36
	path := filepath.Join(t.TempDir(), "shard.fsdl")
	writeFormat3Store(t, st, path, true)
	victim := corruptFirstRecord(t, path)

	cst, err := labelstore.Open(path)
	if err != nil {
		t.Fatalf("strict open of a payload-damaged file must succeed (lazy CRC): %v", err)
	}
	srv, err := NewShardServer(ShardConfig{Store: cst, Name: "shard0"})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	intact := -1
	for _, v := range st.Vertices() {
		if v != victim {
			intact = v
			break
		}
	}
	if err := WriteFrame(conn, OpGetLabels, AppendLabelRequest(nil, []int32{int32(victim), int32(intact)})); err != nil {
		t.Fatal(err)
	}
	op, payload, err := ReadFrame(conn)
	if err != nil || op != OpLabels {
		t.Fatalf("op=%d err=%v", op, err)
	}
	_, recs, err := ParseLabelResponse(payload)
	if err != nil || len(recs) != 2 {
		t.Fatalf("bad response: %v", err)
	}
	if recs[0].Present || !recs[0].Unknown {
		t.Fatalf("corrupt record answered present=%v unknown=%v, want the unknown state", recs[0].Present, recs[0].Unknown)
	}
	wantBits, wantData, _ := st.Raw(intact)
	if !recs[1].Present || recs[1].Bits != wantBits || !bytes.Equal(recs[1].Data, wantData) {
		t.Fatalf("intact record differs from canonical bytes")
	}

	// The health probe flags the shard non-authoritative while the
	// corrupt record is unhealed.
	if err := WriteFrame(conn, OpPing, nil); err != nil {
		t.Fatal(err)
	}
	op, payload, err = ReadFrame(conn)
	if err != nil || op != OpPong {
		t.Fatalf("ping: op=%d err=%v", op, err)
	}
	_, _, flags, _, err := ParsePong(payload)
	if err != nil {
		t.Fatal(err)
	}
	if flags&PongNonAuthoritative == 0 {
		t.Fatal("shard with a known-corrupt record did not flag non-authoritative")
	}

	// Healing the record (as the repairer's digest audit would) clears
	// both the Unknown answer and the flag.
	bits, data, ok := st.Raw(victim)
	if !ok {
		t.Fatal("source store lost the victim")
	}
	if err := cst.Put(victim, bits, data); err != nil {
		t.Fatalf("heal: %v", err)
	}
	if err := WriteFrame(conn, OpGetLabels, AppendLabelRequest(nil, []int32{int32(victim)})); err != nil {
		t.Fatal(err)
	}
	if op, payload, err = ReadFrame(conn); err != nil || op != OpLabels {
		t.Fatalf("post-heal: op=%d err=%v", op, err)
	}
	if _, recs, err = ParseLabelResponse(payload); err != nil || len(recs) != 1 {
		t.Fatalf("post-heal response: %v", err)
	}
	if !recs[0].Present || !bytes.Equal(recs[0].Data, data) {
		t.Fatal("healed record not served")
	}
	if err := WriteFrame(conn, OpPing, nil); err != nil {
		t.Fatal(err)
	}
	if op, payload, err = ReadFrame(conn); err != nil || op != OpPong {
		t.Fatalf("post-heal ping: op=%d err=%v", op, err)
	}
	if _, _, flags, _, err = ParsePong(payload); err != nil {
		t.Fatal(err)
	}
	if flags&PongNonAuthoritative != 0 {
		t.Fatal("healed shard still flags non-authoritative")
	}
}

// TestFrontendFailsOverCorruptFSDL3: with an intact replica, a frontend
// read of the corrupt vertex fails over and returns the right label —
// bit rot on one replica is invisible to clients.
func TestFrontendFailsOverCorruptFSDL3(t *testing.T) {
	_, st := buildFullStore(t, 6)
	path := filepath.Join(t.TempDir(), "replica.fsdl")
	writeFormat3Store(t, st, path, true)
	victim := corruptFirstRecord(t, path)
	cst, err := labelstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}

	mk := func(cfg ShardConfig) string {
		t.Helper()
		srv, err := NewShardServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		return ln.Addr().String()
	}
	m := &Membership{Replication: 2, Nodes: []Node{
		{Name: "shard0", Addr: mk(ShardConfig{Store: cst, Name: "shard0"})},
		{Name: "shard1", Addr: mk(ShardConfig{Store: st, Name: "shard1"})},
	}}
	f := newTestFrontend(t, &testCluster{membership: m}, nil)

	got, err := f.Label(context.Background(), victim)
	if err != nil {
		t.Fatalf("Label(%d) with an intact replica: %v", victim, err)
	}
	want, err := st.Label(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(labelBytes(t, got), labelBytes(t, want)) {
		t.Fatalf("label %d differs after corrupt-replica failover", victim)
	}
	if f.met.unavailable.Load() != 0 {
		t.Fatalf("%d labels unavailable though shard1 holds everything", f.met.unavailable.Load())
	}
}

// TestLoadGenerationMmap: a shard configured with Mmap activates an
// FSDL3 generation straight from the page cache — the swapped-in store
// is mapped, not heap-loaded — and serves canonical record bytes.
func TestLoadGenerationMmap(t *testing.T) {
	_, st := buildFullStore(t, 6)
	root := t.TempDir()
	dir := filepath.Join(root, labelstore.GenerationDirName(2))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	full := filepath.Join(dir, labelstore.GenerationLabelsFile)
	writeFormat3Store(t, st, full, true)
	crc, err := labelstore.FileCRC(full)
	if err != nil {
		t.Fatal(err)
	}
	m := &labelstore.Manifest{Generation: 2, N: st.NumVertices(), Files: []labelstore.ManifestFile{
		{Name: labelstore.GenerationLabelsFile, Records: st.NumLabels(), First: 0, Last: st.NumVertices() - 1, CRC: crc},
	}}
	if err := labelstore.WriteManifestFile(dir, m); err != nil {
		t.Fatal(err)
	}

	srv, err := NewShardServer(ShardConfig{Store: st, Name: "shard0", GenerationRoot: root, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadGeneration(2); err != nil {
		t.Fatal(err)
	}
	cur, gen := srv.currentStore()
	if gen != 2 {
		t.Fatalf("generation = %d, want 2", gen)
	}
	if cur.Format() != 3 || !cur.Compressed() {
		t.Fatalf("activated store format=%d compressed=%v, want FSDL3 compressed", cur.Format(), cur.Compressed())
	}
	for _, v := range st.Vertices() {
		wantBits, wantData, _ := st.Raw(v)
		bits, data, ok := cur.Raw(v)
		if !ok || bits != wantBits || !bytes.Equal(data, wantData) {
			t.Fatalf("vertex %d differs through the mmap'd generation", v)
		}
	}
}
