package cluster

import (
	"testing"
	"time"
)

// testBreakerConfig is a breaker with round numbers: 10s window over 10
// buckets, 8-request floor, 50% trip ratio, 2s cooldown doubling to 30s.
func testBreakerConfig() breakerConfig {
	return breakerConfig{
		window:       10 * time.Second,
		buckets:      10,
		minRequests:  8,
		failureRatio: 0.5,
		cooldown:     2 * time.Second,
		maxCooldown:  30 * time.Second,
	}
}

func TestBreakerTripsAtFailureRatio(t *testing.T) {
	b := newBreaker(testBreakerConfig())
	t0 := time.Unix(1000, 0)

	// 4 successes + 3 failures = 7 outcomes: below the floor, and the
	// 8th outcome (a failure) puts fails/total at exactly the ratio.
	for i := 0; i < 4; i++ {
		b.record(t0, true)
	}
	for i := 0; i < 3; i++ {
		b.record(t0, false)
	}
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("breaker %v after 7 outcomes, want closed (floor is 8)", st)
	}
	b.record(t0, false) // 4 fails / 8 total = 0.5 = ratio
	st, opens := b.snapshot()
	if st != BreakerOpen || opens != 1 {
		t.Fatalf("breaker %v opens=%d after hitting the ratio at the floor, want open/1", st, opens)
	}
	if b.allow(t0.Add(time.Second)) {
		t.Fatal("open breaker admitted traffic inside the cooldown")
	}
}

func TestBreakerMinRequestsFloor(t *testing.T) {
	b := newBreaker(testBreakerConfig())
	t0 := time.Unix(1000, 0)
	// 7 consecutive failures — 100% failure rate, but under the floor.
	for i := 0; i < 7; i++ {
		b.record(t0, false)
		if st, _ := b.snapshot(); st != BreakerClosed {
			t.Fatalf("breaker %v after %d failures, want closed until the floor", st, i+1)
		}
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(testBreakerConfig())
	t0 := time.Unix(1000, 0)
	for i := 0; i < 8; i++ {
		b.record(t0, i < 4)
	}
	if st, _ := b.snapshot(); st != BreakerOpen {
		t.Fatal("breaker did not open")
	}

	// Cooldown elapsed: exactly one probe gets through.
	t1 := t0.Add(2 * time.Second)
	if !b.allow(t1) {
		t.Fatal("probe denied after the cooldown")
	}
	if st, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatal("breaker not half-open after admitting the probe")
	}
	if b.allow(t1) {
		t.Fatal("second request admitted while the probe is in flight")
	}

	// Probe succeeds: closed, window reset.
	b.record(t1, true)
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatal("breaker not closed after a successful probe")
	}
	if !b.allow(t1) {
		t.Fatal("closed breaker denied traffic")
	}
	// The window was reset on close: old failures must not count toward
	// the next trip.
	for i := 0; i < 7; i++ {
		b.record(t1, false)
	}
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatal("stale pre-close outcomes leaked into the fresh window")
	}
}

func TestBreakerCooldownBacksOff(t *testing.T) {
	b := newBreaker(testBreakerConfig())
	t0 := time.Unix(1000, 0)
	for i := 0; i < 8; i++ {
		b.record(t0, i < 4)
	}

	// Failed probe re-trips with a doubled cooldown.
	t1 := t0.Add(2 * time.Second)
	if !b.allow(t1) {
		t.Fatal("first probe denied")
	}
	b.record(t1, false)
	st, opens := b.snapshot()
	if st != BreakerOpen || opens != 2 {
		t.Fatalf("breaker %v opens=%d after a failed probe, want open/2", st, opens)
	}
	if b.allow(t1.Add(2 * time.Second)) {
		t.Fatal("second cooldown did not back off past the base 2s")
	}
	if !b.allow(t1.Add(4 * time.Second)) {
		t.Fatal("probe denied after the doubled 4s cooldown")
	}
	// Another failed probe: 8s next.
	t2 := t1.Add(4 * time.Second)
	b.record(t2, false)
	if b.allow(t2.Add(7 * time.Second)) {
		t.Fatal("third cooldown did not reach 8s")
	}
	if !b.allow(t2.Add(8 * time.Second)) {
		t.Fatal("probe denied after the 8s cooldown")
	}
}

func TestBreakerClosesOnSuccessWhileOpen(t *testing.T) {
	b := newBreaker(testBreakerConfig())
	t0 := time.Unix(1000, 0)
	for i := 0; i < 8; i++ {
		b.record(t0, false)
	}
	if st, _ := b.snapshot(); st != BreakerOpen {
		t.Fatal("breaker did not open")
	}
	// The fallback path leaked a request through and it succeeded: the
	// shard has proven itself, no need to wait out the cooldown.
	b.record(t0.Add(100*time.Millisecond), true)
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatal("success observed while open did not close the breaker")
	}
}

func TestBreakerWindowRotatesOldOutcomesOut(t *testing.T) {
	b := newBreaker(testBreakerConfig())
	t0 := time.Unix(1000, 0)
	// 7 failures now (under the floor), then a long quiet period that
	// rotates the whole window out: the 8th failure lands in an empty
	// window and must not trip.
	for i := 0; i < 7; i++ {
		b.record(t0, false)
	}
	b.record(t0.Add(11*time.Second), false)
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatal("expired failures tripped the breaker")
	}

	// Partial rotation: 4 failures at t0, 4 successes 5s later — all 8
	// are still inside the 10s window, so the ratio trips on the next
	// failure.
	b2 := newBreaker(testBreakerConfig())
	for i := 0; i < 4; i++ {
		b2.record(t0, false)
	}
	for i := 0; i < 4; i++ {
		b2.record(t0.Add(5*time.Second), true)
	}
	b2.record(t0.Add(5*time.Second), false) // 5 fails / 9 total ≥ 0.5
	if st, _ := b2.snapshot(); st != BreakerOpen {
		t.Fatal("failures within the window did not trip the breaker")
	}
}

func TestRetryBudgetSpendAndEarn(t *testing.T) {
	b := newRetryBudget(0.25, 5)
	// Starts full at the burst.
	for i := 0; i < 5; i++ {
		if !b.spend() {
			t.Fatalf("spend %d denied inside the burst", i)
		}
	}
	if b.spend() {
		t.Fatal("spend allowed on an empty bucket")
	}
	// 4 first attempts at ratio 0.25 fund exactly one retry.
	for i := 0; i < 4; i++ {
		b.earn()
	}
	if !b.spend() {
		t.Fatal("earned token not spendable")
	}
	if b.spend() {
		t.Fatal("second spend allowed after earning one token")
	}
	// Earning never exceeds the burst cap.
	for i := 0; i < 1000; i++ {
		b.earn()
	}
	if got := b.level(); got != 5 {
		t.Fatalf("bucket level %v after heavy earning, want the burst cap 5", got)
	}
}
