package cluster

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"fsdl/internal/faultinject"
	"fsdl/internal/graph"
	"fsdl/internal/labelstore"
	"fsdl/internal/server"
)

// restartableShard is a shard that can be killed and brought back on
// the same address, the way a crashed-and-restarted fsdl-shard process
// would reappear.
type restartableShard struct {
	store *labelstore.Store
	name  string
	addr  string
	srv   *ShardServer
}

func (r *restartableShard) start(t *testing.T) {
	t.Helper()
	srv, err := NewShardServer(ShardConfig{Store: r.store, Name: r.name})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", r.addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", r.addr, err)
	}
	r.addr = ln.Addr().String()
	go srv.Serve(ln)
	r.srv = srv
}

func (r *restartableShard) stop() {
	if r.srv != nil {
		r.srv.Close()
		r.srv = nil
	}
}

// TestClusterChaosDegradedUpperBounds is the cluster chaos scenario: a
// faultinject crash schedule takes an entire replica set down
// mid-workload. While the outage holds, queries naming an unreachable
// fault vertex must still answer — flagged exact:false — and every
// answer must remain an upper bound on the true d_{G\F}. After the
// schedule restarts the shards, the same query must return to exact.
func TestClusterChaosDegradedUpperBounds(t *testing.T) {
	const eps = 2.0
	g, st := buildFullStore(t, 8)
	n := st.NumVertices()

	names := []Node{{Name: "shard0"}, {Name: "shard1"}, {Name: "shard2"}}
	ring := NewRing(names, 2)
	parts := ring.Partition(n)

	// A fault vertex owned exclusively by shards 1 and 2 — the replica
	// set the crash schedule will take down together — and query
	// endpoints shard 0 replicates, so the endpoints stay fetchable
	// through the outage and only the fault label is lost.
	faultV := -1
	var endpoints []int
	owners := make([]int, 0, 2)
	for v := 0; v < n; v++ {
		owners = ring.Owners(int32(v), owners[:0])
		if owners[0] != 0 && owners[1] != 0 {
			if faultV < 0 {
				faultV = v
			}
		} else {
			endpoints = append(endpoints, v)
		}
	}
	if faultV < 0 {
		t.Fatal("no vertex owned by exactly shards {1,2}; ring layout changed")
	}
	if len(endpoints) < 6 {
		t.Fatalf("only %d shard0-backed endpoints; ring layout changed", len(endpoints))
	}

	shards := make([]*restartableShard, 3)
	membership := &Membership{Replication: 2}
	for i := range shards {
		var buf bytes.Buffer
		if err := st.SaveVertices(&buf, parts[i]); err != nil {
			t.Fatal(err)
		}
		ps, err := labelstore.Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = &restartableShard{store: ps, name: names[i].Name, addr: "127.0.0.1:0"}
		shards[i].start(t)
		membership.Nodes = append(membership.Nodes, Node{Name: names[i].Name, Addr: shards[i].addr})
	}
	t.Cleanup(func() {
		for _, sh := range shards {
			sh.stop()
		}
	})

	fe := newTestFrontend(t, &testCluster{membership: membership}, func(cfg *FrontendConfig) {
		cfg.FetchTimeout = 400 * time.Millisecond
		// No decoded-label cache: every step re-fetches, so the outage
		// is visible the moment it starts instead of being masked by a
		// label cached before the crash.
		cfg.LabelCacheSize = -1
	})
	// The result cache is disabled so every step recomputes: the steps
	// repeat identical queries, and exact answers cached before the
	// crash would (correctly) keep answering during it, hiding the
	// degraded path this test exists to exercise. Degraded answers
	// themselves are never cached — server.TestDegradedAnswersNotCached
	// pins recovery with the default cache on.
	srv, err := server.New(server.Config{Source: fe, CacheCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}

	// The schedule: shards 1 and 2 crash together at step 2 and restart
	// at step 5 — between those steps the whole replica set of faultV
	// is gone.
	inj, err := faultinject.NewInjector(faultinject.Plan{Crashes: []faultinject.Crash{
		{Router: 1, At: 2, RestartAt: 5},
		{Router: 2, At: 2, RestartAt: 5},
	}}, len(shards))
	if err != nil {
		t.Fatal(err)
	}

	faults := graph.NewFaultSet()
	faults.AddVertex(faultV)
	m := len(endpoints)
	pairs := [][2]int{
		{endpoints[0], endpoints[m-1]},
		{endpoints[1], endpoints[m-2]},
		{endpoints[2], endpoints[m-3]},
	}
	trueDist := make([]int32, len(pairs))
	for i, p := range pairs {
		trueDist[i] = g.DistAvoiding(p[0], p[1], faults)
	}

	ctx := context.Background()
	sawDegraded, sawExact := false, false
	for now := int64(0); now < 8; now++ {
		for i, sh := range shards {
			if inj.CrashedAt(now, i) {
				sh.stop()
			} else if sh.srv == nil {
				sh.start(t)
			}
		}
		outage := inj.CrashedAt(now, 1)
		if outage {
			// Shards just died with connections pooled; give the
			// frontend's first failed fetch + health sweep a beat.
			time.Sleep(100 * time.Millisecond)
		}

		answers, err := srv.AnswerPairs(ctx, pairs, &server.QueryOptions{Faults: faults})
		if err != nil {
			t.Fatalf("step %d: AnswerPairs: %v", now, err)
		}
		for i, a := range answers {
			if a.Error != "" {
				// Endpoints were chosen with shard 0 in their replica
				// set, so they stay fetchable even during the outage.
				t.Fatalf("step %d pair %v errored: %s", now, pairs[i], a.Error)
			}
			if a.Connected {
				// Every answer, degraded or not, upper-bounds d_{G\F}.
				if int32(a.Dist) < trueDist[i] {
					t.Fatalf("step %d pair %v: answer %d below true distance %d", now, pairs[i], a.Dist, trueDist[i])
				}
				if a.Exact && a.Dist > int64(float64(trueDist[i])*(1+eps)) {
					t.Fatalf("step %d pair %v: exact answer %d above (1+eps) bound of %d", now, pairs[i], a.Dist, trueDist[i])
				}
			} else if trueDist[i] >= 0 && !a.Degraded {
				t.Fatalf("step %d pair %v: non-degraded answer says disconnected but d=%d", now, pairs[i], trueDist[i])
			}
			if a.Degraded {
				if a.Exact {
					t.Fatalf("step %d pair %v: degraded answer flagged exact", now, pairs[i])
				}
				if !outage {
					t.Fatalf("step %d pair %v: degraded answer while all shards up", now, pairs[i])
				}
				sawDegraded = true
			} else if outage {
				// The fault label is unreachable during the outage, so a
				// confident answer would be a correctness bug.
				t.Fatalf("step %d pair %v: outage answer not flagged degraded", now, pairs[i])
			} else if a.Exact {
				sawExact = true
			}
		}
	}
	if !sawDegraded {
		t.Fatal("outage produced no degraded answers; the chaos schedule never bit")
	}
	if !sawExact {
		t.Fatal("no exact answers outside the outage")
	}

	// Post-restart health reflects three live shards again.
	deadline := time.Now().Add(3 * time.Second)
	for {
		healthy := 0
		for _, h := range fe.Health() {
			if h.Healthy {
				healthy++
			}
		}
		if healthy == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/3 shards healthy after restart", healthy)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
