package cluster

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// Node is one shard in the cluster membership. Name is the stable
// identity that positions the node on the ring (and names its partition
// file); Addr is where its ShardServer listens. Renaming a node moves
// its ring slice; re-addressing it does not.
type Node struct {
	Name string
	Addr string
}

// Membership is the static cluster topology: the shard nodes and the
// replication factor R every vertex's label is stored under. The same
// file drives `fsdl partition` (which shards must hold which labels)
// and the frontend (where to fetch them), so the two can never disagree
// about ownership.
//
// The file format is line-oriented text:
//
//	# comment
//	replication 2
//	shard0 127.0.0.1:9000
//	shard1 127.0.0.1:9001
//	shard2 127.0.0.1:9002
//
// The replication directive is optional (default 1) and must appear
// before the first node line.
type Membership struct {
	Replication int
	Nodes       []Node
}

// ParseMembership reads the membership text format.
func ParseMembership(r io.Reader) (*Membership, error) {
	m := &Membership{Replication: 1}
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "replication" {
			if len(m.Nodes) > 0 {
				return nil, fmt.Errorf("cluster: membership line %d: replication directive must precede node lines", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("cluster: membership line %d: want `replication N`", line)
			}
			r, err := strconv.Atoi(fields[1])
			if err != nil || r < 1 {
				return nil, fmt.Errorf("cluster: membership line %d: bad replication %q", line, fields[1])
			}
			m.Replication = r
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("cluster: membership line %d: want `name addr`, got %q", line, text)
		}
		name, addr := fields[0], fields[1]
		if seen[name] {
			return nil, fmt.Errorf("cluster: membership line %d: duplicate node name %q", line, name)
		}
		seen[name] = true
		m.Nodes = append(m.Nodes, Node{Name: name, Addr: addr})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: read membership: %w", err)
	}
	if len(m.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: membership has no nodes")
	}
	if m.Replication > len(m.Nodes) {
		return nil, fmt.Errorf("cluster: replication %d exceeds node count %d", m.Replication, len(m.Nodes))
	}
	return m, nil
}

// LoadMembership reads a membership file from disk.
func LoadMembership(path string) (*Membership, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseMembership(f)
}

// Ring returns the consistent-hash ring for this membership.
func (m *Membership) Ring() *Ring {
	return NewRing(m.Nodes, m.Replication)
}

// VirtualNodes is how many ring points each shard contributes. More
// points smooth the partition sizes (the expected imbalance shrinks
// like 1/√points); 64 keeps the worst shard within a few percent of
// fair share while the ring stays small enough to rebuild instantly.
const VirtualNodes = 64

// Ring is a consistent-hash ring mapping vertex ids to the R shard
// nodes owning their label. Construction is deterministic in the node
// *names* only, so ownership survives address changes and is identical
// at partition time and at serve time. Immutable after construction.
type Ring struct {
	nodes       []Node
	points      []ringPoint // sorted by hash, ties broken by node index
	replication int
}

type ringPoint struct {
	hash uint64
	node int32 // index into nodes
}

// NewRing builds the ring. replication is clamped to [1, len(nodes)].
func NewRing(nodes []Node, replication int) *Ring {
	if replication < 1 {
		replication = 1
	}
	if replication > len(nodes) {
		replication = len(nodes)
	}
	rg := &Ring{
		nodes:       slices.Clone(nodes),
		points:      make([]ringPoint, 0, len(nodes)*VirtualNodes),
		replication: replication,
	}
	for i, nd := range rg.nodes {
		for j := 0; j < VirtualNodes; j++ {
			rg.points = append(rg.points, ringPoint{
				hash: hashString(nd.Name + "#" + strconv.Itoa(j)),
				node: int32(i),
			})
		}
	}
	slices.SortFunc(rg.points, func(a, b ringPoint) int {
		if a.hash != b.hash {
			if a.hash < b.hash {
				return -1
			}
			return 1
		}
		return int(a.node) - int(b.node)
	})
	return rg
}

// Nodes returns the membership the ring was built from (shared; do not
// mutate).
func (rg *Ring) Nodes() []Node { return rg.nodes }

// Replication returns the effective replication factor.
func (rg *Ring) Replication() int { return rg.replication }

// Owners appends to dst the indices (into Nodes) of the R distinct
// shards owning vertex v's label, primary first, and returns the
// extended slice. The walk order is the failover/hedging order: replica
// k is consulted only when replicas 0..k-1 are slow or down.
func (rg *Ring) Owners(v int32, dst []int) []int {
	start := sort.Search(len(rg.points), func(i int) bool {
		return rg.points[i].hash >= vertexHash(v)
	})
	base := len(dst)
	for i := 0; i < len(rg.points) && len(dst)-base < rg.replication; i++ {
		nd := int(rg.points[(start+i)%len(rg.points)].node)
		if !slices.Contains(dst[base:], nd) {
			dst = append(dst, nd)
		}
	}
	return dst
}

// Primary returns the index of the first-choice owner of vertex v.
func (rg *Ring) Primary(v int32) int {
	start := sort.Search(len(rg.points), func(i int) bool {
		return rg.points[i].hash >= vertexHash(v)
	})
	return int(rg.points[start%len(rg.points)].node)
}

// Partition returns, for each node, the sorted vertex ids in [0, n)
// whose labels that node must hold (as primary or replica) — the work
// order for `fsdl partition`.
func (rg *Ring) Partition(n int) [][]int {
	out := make([][]int, len(rg.nodes))
	owners := make([]int, 0, rg.replication)
	for v := 0; v < n; v++ {
		owners = rg.Owners(int32(v), owners[:0])
		for _, nd := range owners {
			out[nd] = append(out[nd], v)
		}
	}
	return out
}

// hashString is FNV-1a, the ring-point hash. Stable across processes
// and Go versions by construction.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// vertexHash spreads vertex ids over the ring with a full-avalanche
// mix (splitmix64 finalizer): sequential ids land on unrelated points,
// so contiguous graph regions spread across shards instead of
// hot-spotting one.
func vertexHash(v int32) uint64 {
	x := uint64(uint32(v)) + 0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
