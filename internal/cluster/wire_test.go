package cluster

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0x42}, bytes.Repeat([]byte{0xab}, 4096)}
	for _, p := range payloads {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, OpGetLabels, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		op, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if op != OpGetLabels || !bytes.Equal(got, p) {
			t.Fatalf("round trip mismatch: op=%d len=%d want len=%d", op, len(got), len(p))
		}
		// DecodeFrame agrees with ReadFrame on the same bytes.
		enc := AppendFrame(nil, OpPong, p)
		op2, got2, rest, err := DecodeFrame(enc)
		if err != nil || op2 != OpPong || !bytes.Equal(got2, p) || len(rest) != 0 {
			t.Fatalf("DecodeFrame mismatch: op=%d err=%v rest=%d", op2, err, len(rest))
		}
	}
}

func TestFrameStream(t *testing.T) {
	// Several frames back to back decode in order from one stream.
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteFrame(&buf, byte(i+1), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		op, p, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if op != byte(i+1) || len(p) != 1 || p[0] != byte(i) {
			t.Fatalf("frame %d: op=%d payload=%v", i, op, p)
		}
	}
	if _, _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("want clean EOF at stream end, got %v", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	base := AppendFrame(nil, OpLabels, []byte("hello label bytes"))
	// Flip every single byte in turn: every corruption must be detected
	// (bad magic, bad version, bad length, or CRC mismatch) — none may
	// decode successfully, and none may panic.
	for i := range base {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0x40
		if _, _, _, err := DecodeFrame(mut); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
		if _, _, err := ReadFrame(bytes.NewReader(mut)); err == nil {
			t.Fatalf("ReadFrame: flipping byte %d went undetected", i)
		}
	}
	// Truncation at every boundary is detected too.
	for i := 0; i < len(base); i++ {
		if _, _, _, err := DecodeFrame(base[:i]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", i)
		}
	}
}

func TestFrameLengthBound(t *testing.T) {
	// A frame whose length field claims more than MaxFramePayload is
	// rejected from the header alone — no allocation, no read attempt.
	head := []byte{frameMagic0, frameMagic1, frameVer, OpLabels, 0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadFrame(bytes.NewReader(head)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	if _, _, _, err := DecodeFrame(append(head, make([]byte, 64)...)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("DecodeFrame: want ErrFrameTooLarge, got %v", err)
	}
}

func TestLabelRequestRoundTrip(t *testing.T) {
	ids := []int32{0, 1, 7, 1 << 20, 1<<31 - 1}
	got, err := ParseLabelRequest(AppendLabelRequest(nil, ids))
	if err != nil {
		t.Fatalf("ParseLabelRequest: %v", err)
	}
	if len(got) != len(ids) {
		t.Fatalf("got %d ids, want %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("id %d: got %d want %d", i, got[i], ids[i])
		}
	}
	// Lying count fields are rejected before allocation.
	if _, err := ParseLabelRequest([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Fatal("oversized count accepted")
	}
}

func TestLabelResponseRoundTrip(t *testing.T) {
	recs := []LabelRecord{
		{Vertex: 3, Present: true, Bits: 12, Data: []byte{0xaa, 0x0b}},
		{Vertex: 9, Present: false},
		{Vertex: 0, Present: true, Bits: 0, Data: nil},
	}
	n, got, err := ParseLabelResponse(AppendLabelResponse(nil, 100, recs))
	if err != nil {
		t.Fatalf("ParseLabelResponse: %v", err)
	}
	if n != 100 || len(got) != len(recs) {
		t.Fatalf("n=%d records=%d", n, len(got))
	}
	for i, r := range recs {
		g := got[i]
		if g.Vertex != r.Vertex || g.Present != r.Present || g.Bits != r.Bits || !bytes.Equal(g.Data, r.Data) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, g, r)
		}
	}
	// Out-of-range vertex is rejected.
	bad := AppendLabelResponse(nil, 2, []LabelRecord{{Vertex: 5}})
	if _, _, err := ParseLabelResponse(bad); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestPongRoundTrip(t *testing.T) {
	n, labels, flags, gen, err := ParsePong(AppendPong(nil, 4096, 1365, 0, 1))
	if err != nil || n != 4096 || labels != 1365 || flags != 0 || gen != 1 {
		t.Fatalf("pong round trip: n=%d labels=%d flags=%d gen=%d err=%v", n, labels, flags, gen, err)
	}
	n, labels, flags, gen, err = ParsePong(AppendPong(nil, 9, 0, PongNonAuthoritative, 12))
	if err != nil || n != 9 || labels != 0 || flags != PongNonAuthoritative || gen != 12 {
		t.Fatalf("flagged pong round trip: n=%d labels=%d flags=%d gen=%d err=%v", n, labels, flags, gen, err)
	}
	// The generation varint is required — a three-field pong is torn.
	if _, _, _, _, err := ParsePong(AppendPong(nil, 9, 0, 0, 1)[:3]); err == nil {
		t.Fatal("truncated pong accepted")
	}
}

func TestGenPayloadRoundTrips(t *testing.T) {
	gen, ids, err := ParseGenLabelRequest(AppendGenLabelRequest(nil, 5, []int32{1, 2, 3}))
	if err != nil || gen != 5 || len(ids) != 3 || ids[2] != 3 {
		t.Fatalf("gen label request round trip: gen=%d ids=%v err=%v", gen, ids, err)
	}
	g, err := ParseGeneration(AppendGeneration(nil, 42))
	if err != nil || g != 42 {
		t.Fatalf("generation round trip: g=%d err=%v", g, err)
	}
	if _, err := ParseGeneration(append(AppendGeneration(nil, 42), 0)); err == nil {
		t.Fatal("trailing bytes accepted in generation payload")
	}
}

func TestDigestResponseRoundTrip(t *testing.T) {
	missing := []int32{1, 5, 99}
	n, d, present, m, err := ParseDigestResponse(AppendDigestResponse(nil, 100, 0xcafebabe, 97, missing))
	if err != nil || n != 100 || d != 0xcafebabe || present != 97 {
		t.Fatalf("digest round trip: n=%d digest=%#x present=%d err=%v", n, d, present, err)
	}
	if len(m) != len(missing) || m[0] != 1 || m[2] != 99 {
		t.Fatalf("missing ids round trip: %v", m)
	}
	// A missing id at or past n is rejected.
	bad := AppendDigestResponse(nil, 10, 0, 9, []int32{10})
	if _, _, _, _, err := ParseDigestResponse(bad); err == nil {
		t.Fatal("out-of-range missing id accepted")
	}
}

func TestRepairRequestRoundTrip(t *testing.T) {
	src, ids, err := ParseRepairRequest(AppendRepairRequest(nil, "10.0.0.7:9002", []int32{3, 4}))
	if err != nil || src != "10.0.0.7:9002" || len(ids) != 2 || ids[1] != 4 {
		t.Fatalf("repair request round trip: src=%q ids=%v err=%v", src, ids, err)
	}
	if _, _, err := ParseRepairRequest(AppendRepairRequest(nil, "", []int32{1})); err == nil {
		t.Fatal("empty source accepted")
	}
	if _, _, err := ParseRepairRequest(AppendRepairRequest(nil, "x:1", nil)); err == nil {
		t.Fatal("empty id list accepted")
	}
	installed, failed, err := ParseRepairResponse(AppendRepairResponse(nil, 7, 2))
	if err != nil || installed != 7 || failed != 2 {
		t.Fatalf("repair response round trip: %d/%d err=%v", installed, failed, err)
	}
}
