// Package oracle packages the labeling scheme as centralized data
// structures: a static forbidden-set distance oracle (the table of all
// labels — "the size of the oracle is at most n times the label length"),
// and the fully dynamic (1+ε) distance oracle obtained from the
// forbidden-set labels via the transform of Abraham, Chechik and Gavoille
// (STOC 2012), cited in the paper's Related Work: failures and recoveries
// accumulate in a forbidden set, and the structure rebuilds itself on the
// surviving graph when the set grows past a threshold (≈√n), keeping
// query cost bounded independently of the total number of updates.
package oracle

import (
	"fmt"
	"math"
	"sync"

	"fsdl/internal/core"
	"fsdl/internal/graph"
)

// Static is a forbidden-set distance oracle: the table T[v] = L(v) of all
// serialized labels. Queries load the required labels from the table and
// run the label decoder — no other state is consulted.
type Static struct {
	epsilon float64
	labels  [][]byte
	bits    []int
}

// BuildStatic materializes the oracle for g at precision ε. Label
// extraction is embarrassingly parallel, so it runs on a worker pool sized
// to the machine.
func BuildStatic(g *graph.Graph, epsilon float64) (*Static, error) {
	s, err := core.BuildScheme(g, epsilon)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	o := &Static{
		epsilon: epsilon,
		labels:  make([][]byte, n),
		bits:    make([]int, n),
	}
	s.SetCacheLimit(0)
	// Extract through the scheme's bulk API (parallel, pooled BFS
	// scratch), one chunk at a time so only a chunk's worth of decoded
	// labels is ever live alongside the encoded table.
	const chunk = 512
	vs := make([]int, 0, chunk)
	for base := 0; base < n; base += chunk {
		hi := min(base+chunk, n)
		vs = vs[:0]
		for v := base; v < hi; v++ {
			vs = append(vs, v)
		}
		for i, l := range s.Labels(vs) {
			buf, nbits := l.Encode()
			o.labels[base+i] = buf
			o.bits[base+i] = nbits
		}
	}
	return o, nil
}

// NumVertices returns the number of table entries.
func (o *Static) NumVertices() int { return len(o.labels) }

// SizeBits returns the total oracle size in bits (the sum of all label
// lengths).
func (o *Static) SizeBits() int64 {
	var total int64
	for _, b := range o.bits {
		total += int64(b)
	}
	return total
}

// MaxLabelBits returns the label length of the underlying scheme — the
// size of the largest label.
func (o *Static) MaxLabelBits() int {
	maxBits := 0
	for _, b := range o.bits {
		if b > maxBits {
			maxBits = b
		}
	}
	return maxBits
}

// label loads and decodes T[v].
func (o *Static) label(v int) (*core.Label, error) {
	if v < 0 || v >= len(o.labels) {
		return nil, fmt.Errorf("oracle: vertex %d out of range [0,%d)", v, len(o.labels))
	}
	return core.DecodeLabel(o.labels[v], o.bits[v])
}

// Distance answers the forbidden-set query (u,v,F) from the label table.
// ok is false when u and v are disconnected in G\F or an endpoint is
// forbidden. A non-nil error means the query itself was malformed — an
// out-of-range endpoint or fault id — and carries no verdict about
// connectivity.
func (o *Static) Distance(u, v int, faults *graph.FaultSet) (int64, bool, error) {
	if faults.HasVertex(u) || faults.HasVertex(v) {
		return 0, false, nil
	}
	lu, err := o.label(u)
	if err != nil {
		return 0, false, err
	}
	lv, err := o.label(v)
	if err != nil {
		return 0, false, err
	}
	q := &core.Query{S: lu, T: lv}
	for _, f := range faults.Vertices() {
		lf, err := o.label(f)
		if err != nil {
			return 0, false, err
		}
		q.VertexFaults = append(q.VertexFaults, lf)
	}
	for _, e := range faults.Edges() {
		la, err := o.label(e[0])
		if err != nil {
			return 0, false, err
		}
		lb, err := o.label(e[1])
		if err != nil {
			return 0, false, err
		}
		q.EdgeFaults = append(q.EdgeFaults, [2]*core.Label{la, lb})
	}
	// Decode through the pooled decoder: steady-state queries reuse one
	// warmed-up scratch instead of allocating per call.
	dec := core.NewDecoder()
	d, ok := dec.Distance(q)
	dec.Release()
	return d, ok, nil
}

// Connected answers a forbidden-set connectivity query. A non-nil error
// means an out-of-range endpoint or fault id.
func (o *Static) Connected(u, v int, faults *graph.FaultSet) (bool, error) {
	if u < 0 || u >= len(o.labels) {
		return false, fmt.Errorf("oracle: vertex %d out of range [0,%d)", u, len(o.labels))
	}
	if v < 0 || v >= len(o.labels) {
		return false, fmt.Errorf("oracle: vertex %d out of range [0,%d)", v, len(o.labels))
	}
	if u == v {
		return !faults.HasVertex(u), nil
	}
	_, ok, err := o.Distance(u, v, faults)
	return ok, err
}

// Dynamic is a fully dynamic (1+ε)-approximate distance oracle: vertices
// and edges can fail and recover online, and queries reflect the current
// surviving graph. Between rebuilds, updates cost O(1) and a query costs
// what a forbidden-set query with the current delta set costs; a rebuild
// is triggered when the delta exceeds the threshold.
//
// Dynamic is safe for concurrent use: queries take a read lock, updates
// (and the rebuilds they may trigger) take the write lock, so a serving
// layer can answer Distance calls while failures and recoveries stream in.
type Dynamic struct {
	mu        sync.RWMutex
	base      *graph.Graph
	epsilon   float64
	threshold int

	scheme *core.Scheme
	// origOf / compactOf map between original ids and the compacted ids
	// of the currently built scheme. compactOf[v] < 0 when v was removed
	// at the last rebuild.
	origOf    []int32
	compactOf []int32
	// removedV / removedE are the failures baked into the current build.
	removedV map[int32]bool
	removedE map[[2]int32]bool
	// delta holds the failures accumulated since the last rebuild, in
	// original ids.
	delta *graph.FaultSet
	// rebuilds counts rebuilds, exposed for tests and benchmarks.
	rebuilds int
}

// NewDynamic builds a dynamic oracle over g with precision ε. threshold
// ≤ 0 selects the default ⌈√n⌉.
func NewDynamic(g *graph.Graph, epsilon float64, threshold int) (*Dynamic, error) {
	if threshold <= 0 {
		threshold = int(math.Ceil(math.Sqrt(float64(g.NumVertices()))))
		if threshold < 1 {
			threshold = 1
		}
	}
	d := &Dynamic{
		base:      g,
		epsilon:   epsilon,
		threshold: threshold,
		removedV:  map[int32]bool{},
		removedE:  map[[2]int32]bool{},
		delta:     graph.NewFaultSet(),
	}
	if err := d.rebuild(); err != nil {
		return nil, err
	}
	d.rebuilds = 0
	return d, nil
}

// Rebuilds returns the number of rebuilds performed so far.
func (d *Dynamic) Rebuilds() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.rebuilds
}

// DeltaSize returns the size of the forbidden set accumulated since the
// last rebuild.
func (d *Dynamic) DeltaSize() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.delta.Size()
}

// FailVertex marks v failed. No-op if already failed.
func (d *Dynamic) FailVertex(v int) error {
	if err := d.checkVertex(v); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removedV[int32(v)] || d.delta.HasVertex(v) {
		return nil
	}
	d.delta.AddVertex(v)
	return d.maybeRebuild()
}

// RecoverVertex marks v alive again. Recovering a vertex that was baked
// into the current build forces an immediate rebuild.
func (d *Dynamic) RecoverVertex(v int) error {
	if err := d.checkVertex(v); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.delta.HasVertex(v) {
		d.delta.RemoveVertex(v)
		return nil
	}
	if d.removedV[int32(v)] {
		delete(d.removedV, int32(v))
		return d.rebuild()
	}
	return nil
}

// FailEdge marks the edge (u,v) failed.
func (d *Dynamic) FailEdge(u, v int) error {
	if err := d.checkVertex(u); err != nil {
		return err
	}
	if err := d.checkVertex(v); err != nil {
		return err
	}
	if !d.base.HasEdge(u, v) {
		return fmt.Errorf("oracle: (%d,%d) is not an edge", u, v)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	k := edgeID(u, v)
	if d.removedE[k] || d.delta.HasEdge(u, v) {
		return nil
	}
	d.delta.AddEdge(u, v)
	return d.maybeRebuild()
}

// RecoverEdge marks the edge (u,v) alive again.
func (d *Dynamic) RecoverEdge(u, v int) error {
	if err := d.checkVertex(u); err != nil {
		return err
	}
	if err := d.checkVertex(v); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.delta.HasEdge(u, v) {
		d.delta.RemoveEdge(u, v)
		return nil
	}
	k := edgeID(u, v)
	if d.removedE[k] {
		delete(d.removedE, k)
		return d.rebuild()
	}
	return nil
}

// Distance answers a (1+ε)-approximate distance query on the current
// surviving graph. ok is false when u and v are disconnected (or failed).
// A non-nil error means an out-of-range vertex id and carries no verdict.
func (d *Dynamic) Distance(u, v int) (int64, bool, error) {
	if err := d.checkVertex(u); err != nil {
		return 0, false, err
	}
	if err := d.checkVertex(v); err != nil {
		return 0, false, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	cu, cv := d.compactOf[u], d.compactOf[v]
	if cu < 0 || cv < 0 || d.delta.HasVertex(u) || d.delta.HasVertex(v) {
		return 0, false, nil
	}
	// Translate the delta set into compact ids.
	f := graph.NewFaultSet()
	for _, fv := range d.delta.Vertices() {
		f.AddVertex(int(d.compactOf[fv]))
	}
	for _, fe := range d.delta.Edges() {
		a, b := d.compactOf[fe[0]], d.compactOf[fe[1]]
		if a >= 0 && b >= 0 {
			f.AddEdge(int(a), int(b))
		}
	}
	dist, ok := d.scheme.Distance(int(cu), int(cv), f)
	return dist, ok, nil
}

func (d *Dynamic) checkVertex(v int) error {
	if v < 0 || v >= d.base.NumVertices() {
		return fmt.Errorf("oracle: vertex %d out of range [0,%d)", v, d.base.NumVertices())
	}
	return nil
}

func (d *Dynamic) maybeRebuild() error {
	if d.delta.Size() > d.threshold {
		return d.rebuild()
	}
	return nil
}

// rebuild folds the delta into the removed sets and rebuilds the scheme on
// the surviving graph with compacted vertex ids.
func (d *Dynamic) rebuild() error {
	for _, v := range d.delta.Vertices() {
		d.removedV[int32(v)] = true
	}
	for _, e := range d.delta.Edges() {
		d.removedE[edgeID(e[0], e[1])] = true
	}
	d.delta = graph.NewFaultSet()

	n := d.base.NumVertices()
	d.compactOf = make([]int32, n)
	d.origOf = d.origOf[:0]
	for v := 0; v < n; v++ {
		if d.removedV[int32(v)] {
			d.compactOf[v] = -1
			continue
		}
		d.compactOf[v] = int32(len(d.origOf))
		d.origOf = append(d.origOf, int32(v))
	}
	b := graph.NewBuilder(len(d.origOf))
	d.base.ForEachEdge(func(u, v int) {
		cu, cv := d.compactOf[u], d.compactOf[v]
		if cu < 0 || cv < 0 || d.removedE[edgeID(u, v)] {
			return
		}
		b.AddEdge(int(cu), int(cv))
	})
	g, err := b.Build()
	if err != nil {
		return fmt.Errorf("oracle: rebuild surviving graph: %w", err)
	}
	s, err := core.BuildScheme(g, d.epsilon)
	if err != nil {
		return fmt.Errorf("oracle: rebuild scheme: %w", err)
	}
	d.scheme = s
	d.rebuilds++
	return nil
}

func edgeID(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}
