package oracle

import (
	"math/rand"
	"sync"
	"testing"

	"fsdl/internal/core"
	"fsdl/internal/graph"
)

func gridGraph(t testing.TB, w, h int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(y*w+x, y*w+x+1)
			}
			if y+1 < h {
				b.AddEdge(y*w+x, (y+1)*w+x)
			}
		}
	}
	return b.MustBuild()
}

func TestStaticOracleMatchesExact(t *testing.T) {
	g := gridGraph(t, 6, 6)
	o, err := BuildStatic(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		f := graph.NewFaultSet()
		for i := 0; i < rng.Intn(4); i++ {
			f.AddVertex(rng.Intn(36))
		}
		u, v := rng.Intn(36), rng.Intn(36)
		if f.HasVertex(u) || f.HasVertex(v) {
			continue
		}
		want := g.DistAvoiding(u, v, f)
		got, ok, err := o.Distance(u, v, f)
		if err != nil {
			t.Fatalf("(%d,%d): %v", u, v, err)
		}
		if graph.Reachable(want) != ok {
			t.Fatalf("(%d,%d,|F|=%d): ok=%v, want reachable=%v", u, v, f.Size(), ok, graph.Reachable(want))
		}
		if ok && (got < int64(want) || float64(got) > 3*float64(want)+1e-9) {
			t.Fatalf("(%d,%d): got %d, true %d (eps=2)", u, v, got, want)
		}
	}
}

func TestStaticOracleSize(t *testing.T) {
	g := gridGraph(t, 5, 5)
	o, _ := BuildStatic(g, 2)
	if o.NumVertices() != 25 {
		t.Fatalf("NumVertices = %d", o.NumVertices())
	}
	if o.SizeBits() <= 0 || o.MaxLabelBits() <= 0 {
		t.Fatal("oracle size must be positive")
	}
	if o.SizeBits() > int64(o.NumVertices())*int64(o.MaxLabelBits()) {
		t.Fatal("total size cannot exceed n × max label length")
	}
}

func TestStaticOracleConnected(t *testing.T) {
	g := gridGraph(t, 4, 4)
	o, _ := BuildStatic(g, 2)
	mustConn := func(u, v int, f *graph.FaultSet) bool {
		t.Helper()
		conn, err := o.Connected(u, v, f)
		if err != nil {
			t.Fatalf("Connected(%d,%d): %v", u, v, err)
		}
		return conn
	}
	if !mustConn(0, 15, nil) {
		t.Error("grid corners connected")
	}
	// Seal corner 0 (neighbors 1 and 4).
	if mustConn(0, 15, graph.FaultVertices(1, 4)) {
		t.Error("sealed corner must be disconnected")
	}
	if mustConn(0, 15, graph.FaultVertices(15)) {
		t.Error("failed endpoint is never connected")
	}
	if !mustConn(3, 3, nil) {
		t.Error("vertex is connected to itself")
	}
}

func TestStaticOracleOutOfRange(t *testing.T) {
	g := gridGraph(t, 4, 4)
	o, _ := BuildStatic(g, 2)
	if _, _, err := o.Distance(-1, 3, nil); err == nil {
		t.Error("negative source must error")
	}
	if _, _, err := o.Distance(0, 16, nil); err == nil {
		t.Error("out-of-range target must error")
	}
	if _, _, err := o.Distance(0, 15, graph.FaultVertices(99)); err == nil {
		t.Error("out-of-range fault vertex must error")
	}
	f := graph.NewFaultSet()
	f.AddEdge(0, 99)
	if _, _, err := o.Distance(0, 15, f); err == nil {
		t.Error("out-of-range fault edge endpoint must error")
	}
	if _, err := o.Connected(-5, 0, nil); err == nil {
		t.Error("Connected out of range must error")
	}
}

func TestStaticOracleEverywhereFailure(t *testing.T) {
	// The Theorem 3.1 attack pattern: F(i,j) = V \ {i,j} reduces a
	// connectivity query to adjacency.
	g := gridGraph(t, 3, 3)
	o, _ := BuildStatic(g, 2)
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			f := graph.NewFaultSet()
			for v := 0; v < 9; v++ {
				if v != i && v != j {
					f.AddVertex(v)
				}
			}
			got, err := o.Connected(i, j, f)
			if err != nil {
				t.Fatalf("everywhere-failure query (%d,%d): %v", i, j, err)
			}
			if want := g.HasEdge(i, j); got != want {
				t.Errorf("everywhere-failure query (%d,%d) = %v, adjacency = %v", i, j, got, want)
			}
		}
	}
}

func TestDynamicOracleBasic(t *testing.T) {
	g := gridGraph(t, 6, 6)
	d, err := NewDynamic(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, err := d.Distance(0, 35); err != nil || !ok || got < 10 || got > 30 {
		t.Fatalf("initial Distance(0,35) = (%d,%v,%v)", got, ok, err)
	}
	if err := d.FailVertex(7); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Distance(7, 0); ok {
		t.Error("failed vertex must be unreachable")
	}
	if err := d.RecoverVertex(7); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Distance(7, 0); !ok {
		t.Error("recovered vertex must answer again")
	}
}

func TestDynamicOracleMatchesExactUnderChurn(t *testing.T) {
	g := gridGraph(t, 6, 6)
	d, err := NewDynamic(g, 2, 3) // tiny threshold to force rebuilds
	if err != nil {
		t.Fatal(err)
	}
	live := graph.NewFaultSet() // mirror of the failed set
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 60; step++ {
		v := rng.Intn(36)
		if rng.Intn(2) == 0 {
			if err := d.FailVertex(v); err != nil {
				t.Fatal(err)
			}
			live.AddVertex(v)
		} else {
			if err := d.RecoverVertex(v); err != nil {
				t.Fatal(err)
			}
			live.RemoveVertex(v)
		}
		u, w := rng.Intn(36), rng.Intn(36)
		want := g.DistAvoiding(u, w, live)
		got, ok, err := d.Distance(u, w)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if graph.Reachable(want) != ok {
			t.Fatalf("step %d: (%d,%d) ok=%v, want reachable=%v (|F|=%d)",
				step, u, w, ok, graph.Reachable(want), live.Size())
		}
		if ok && (got < int64(want) || float64(got) > 3*float64(want)+1e-9) {
			t.Fatalf("step %d: (%d,%d) got %d, true %d", step, u, w, got, want)
		}
	}
	if d.Rebuilds() == 0 {
		t.Error("churn past the threshold must trigger rebuilds")
	}
}

func TestDynamicOracleEdges(t *testing.T) {
	g := gridGraph(t, 4, 4)
	d, err := NewDynamic(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.FailEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.FailEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Distance(0, 15); ok {
		t.Error("sealed corner must disconnect")
	}
	if err := d.RecoverEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := d.Distance(0, 15); err != nil || !ok || got < 6 {
		t.Errorf("after recovery Distance(0,15) = (%d,%v,%v)", got, ok, err)
	}
	if err := d.FailEdge(0, 9); err == nil {
		t.Error("failing a non-edge must error")
	}
}

func TestDynamicOracleRecoverBakedInFailure(t *testing.T) {
	g := gridGraph(t, 5, 5)
	d, err := NewDynamic(g, 2, 1) // threshold 1: second failure rebuilds
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{6, 7, 8} {
		if err := d.FailVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	if d.Rebuilds() == 0 {
		t.Fatal("expected a rebuild after exceeding threshold 1")
	}
	// 6 was baked into the rebuild; recovering it must rebuild again and
	// restore correct answers.
	before := d.Rebuilds()
	if err := d.RecoverVertex(6); err != nil {
		t.Fatal(err)
	}
	if d.Rebuilds() <= before {
		t.Error("recovering a baked-in failure must rebuild")
	}
	live := graph.FaultVertices(7, 8)
	want := g.DistAvoiding(0, 24, live)
	got, ok, err := d.Distance(0, 24)
	if err != nil || !ok || got < int64(want) {
		t.Fatalf("post-recovery Distance(0,24) = (%d,%v,%v), true %d", got, ok, err, want)
	}
}

func TestDynamicOracleOutOfRange(t *testing.T) {
	g := gridGraph(t, 3, 3)
	d, _ := NewDynamic(g, 2, 0)
	if err := d.FailVertex(100); err == nil {
		t.Error("out-of-range failure must error")
	}
	if _, _, err := d.Distance(-1, 0); err == nil {
		t.Error("out-of-range query must error")
	}
	if _, _, err := d.Distance(0, 100); err == nil {
		t.Error("out-of-range target must error")
	}
	if err := d.RecoverEdge(0, 100); err == nil {
		t.Error("out-of-range recover must error")
	}
}

func TestDynamicOracleIdempotentUpdates(t *testing.T) {
	g := gridGraph(t, 4, 4)
	d, _ := NewDynamic(g, 2, 10)
	if err := d.FailVertex(5); err != nil {
		t.Fatal(err)
	}
	if err := d.FailVertex(5); err != nil {
		t.Fatal(err)
	}
	if d.DeltaSize() != 1 {
		t.Errorf("DeltaSize = %d after duplicate failure, want 1", d.DeltaSize())
	}
	if err := d.RecoverVertex(5); err != nil {
		t.Fatal(err)
	}
	if err := d.RecoverVertex(5); err != nil {
		t.Fatal(err)
	}
	if d.DeltaSize() != 0 {
		t.Errorf("DeltaSize = %d after recovery, want 0", d.DeltaSize())
	}
}

// TestDynamicOracleRebuildMatchesFreshScheme drives the delta past the
// default √n threshold with interleaved vertex/edge failures and
// recoveries, then checks that the post-rebuild oracle answers exactly
// what a scheme built from scratch on the surviving graph answers.
func TestDynamicOracleRebuildMatchesFreshScheme(t *testing.T) {
	g := gridGraph(t, 6, 6) // n=36, default threshold ⌈√36⌉ = 6
	d, err := NewDynamic(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	type op struct {
		fail, edge bool
		u, v       int
	}
	script := []op{
		{fail: true, u: 1}, {fail: true, u: 2}, {fail: true, u: 3},
		{u: 2}, // recover from the delta, no rebuild
		{fail: true, edge: true, u: 30, v: 31},
		{fail: true, edge: true, u: 24, v: 30},
		{fail: true, u: 4}, {fail: true, u: 5},
		{fail: true, u: 9}, // 7th delta element: crosses threshold 6 → rebuild
		{u: 9},             // baked into the build by now → rebuild again
	}
	for i, o := range script {
		var err error
		switch {
		case o.fail && o.edge:
			err = d.FailEdge(o.u, o.v)
		case o.fail:
			err = d.FailVertex(o.u)
		case o.edge:
			err = d.RecoverEdge(o.u, o.v)
		default:
			err = d.RecoverVertex(o.u)
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if got := d.Rebuilds(); got != 2 {
		t.Fatalf("Rebuilds() = %d, want 2 (threshold crossing + baked-in recovery)", got)
	}
	if got := d.DeltaSize(); got != 0 {
		t.Fatalf("DeltaSize() = %d after a rebuild, want 0", got)
	}

	// Rebuild the surviving graph exactly the way the oracle compacts it
	// (ascending original ids) and compare against a fresh scheme.
	failedV := map[int]bool{1: true, 3: true, 4: true, 5: true}
	failedE := map[[2]int]bool{{30, 31}: true, {24, 30}: true}
	n := g.NumVertices()
	compact := make([]int, n)
	orig := []int{}
	for v := 0; v < n; v++ {
		if failedV[v] {
			compact[v] = -1
			continue
		}
		compact[v] = len(orig)
		orig = append(orig, v)
	}
	b := graph.NewBuilder(len(orig))
	g.ForEachEdge(func(u, v int) {
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		if compact[u] < 0 || compact[v] < 0 || failedE[[2]int{lo, hi}] {
			return
		}
		b.AddEdge(compact[u], compact[v])
	})
	fresh, err := core.BuildScheme(b.MustBuild(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{0, 8, 14, 20, 28, 35} {
		for _, w := range []int{0, 8, 14, 20, 28, 35} {
			gotD, gotOK, err := d.Distance(u, w)
			if err != nil {
				t.Fatalf("Distance(%d,%d): %v", u, w, err)
			}
			wantD, wantOK := fresh.Distance(compact[u], compact[w], nil)
			if gotOK != wantOK || (gotOK && gotD != wantD) {
				t.Errorf("Distance(%d,%d) = (%d,%v), fresh scheme says (%d,%v)",
					u, w, gotD, gotOK, wantD, wantOK)
			}
		}
	}
}

// TestDynamicOracleConcurrentChurn hammers one Dynamic with parallel
// queries and updates; run under -race this backs the concurrency claim
// in the type's documentation.
func TestDynamicOracleConcurrentChurn(t *testing.T) {
	g := gridGraph(t, 6, 6)
	d, err := NewDynamic(g, 2, 3) // tiny threshold: rebuilds race with queries
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				if _, _, err := d.Distance(rng.Intn(36), rng.Intn(36)); err != nil {
					errs <- err
					return
				}
				d.Rebuilds()
				d.DeltaSize()
			}
		}(int64(w))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < 15; i++ {
				v := rng.Intn(36)
				if err := d.FailVertex(v); err != nil {
					errs <- err
					return
				}
				if rng.Intn(2) == 0 {
					if err := d.RecoverVertex(v); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
