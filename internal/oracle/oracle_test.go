package oracle

import (
	"math/rand"
	"testing"

	"fsdl/internal/graph"
)

func gridGraph(t testing.TB, w, h int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(y*w+x, y*w+x+1)
			}
			if y+1 < h {
				b.AddEdge(y*w+x, (y+1)*w+x)
			}
		}
	}
	return b.MustBuild()
}

func TestStaticOracleMatchesExact(t *testing.T) {
	g := gridGraph(t, 6, 6)
	o, err := BuildStatic(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		f := graph.NewFaultSet()
		for i := 0; i < rng.Intn(4); i++ {
			f.AddVertex(rng.Intn(36))
		}
		u, v := rng.Intn(36), rng.Intn(36)
		if f.HasVertex(u) || f.HasVertex(v) {
			continue
		}
		want := g.DistAvoiding(u, v, f)
		got, ok := o.Distance(u, v, f)
		if graph.Reachable(want) != ok {
			t.Fatalf("(%d,%d,|F|=%d): ok=%v, want reachable=%v", u, v, f.Size(), ok, graph.Reachable(want))
		}
		if ok && (got < int64(want) || float64(got) > 3*float64(want)+1e-9) {
			t.Fatalf("(%d,%d): got %d, true %d (eps=2)", u, v, got, want)
		}
	}
}

func TestStaticOracleSize(t *testing.T) {
	g := gridGraph(t, 5, 5)
	o, _ := BuildStatic(g, 2)
	if o.NumVertices() != 25 {
		t.Fatalf("NumVertices = %d", o.NumVertices())
	}
	if o.SizeBits() <= 0 || o.MaxLabelBits() <= 0 {
		t.Fatal("oracle size must be positive")
	}
	if o.SizeBits() > int64(o.NumVertices())*int64(o.MaxLabelBits()) {
		t.Fatal("total size cannot exceed n × max label length")
	}
}

func TestStaticOracleConnected(t *testing.T) {
	g := gridGraph(t, 4, 4)
	o, _ := BuildStatic(g, 2)
	if !o.Connected(0, 15, nil) {
		t.Error("grid corners connected")
	}
	// Seal corner 0 (neighbors 1 and 4).
	if o.Connected(0, 15, graph.FaultVertices(1, 4)) {
		t.Error("sealed corner must be disconnected")
	}
	if o.Connected(0, 15, graph.FaultVertices(15)) {
		t.Error("failed endpoint is never connected")
	}
	if !o.Connected(3, 3, nil) {
		t.Error("vertex is connected to itself")
	}
}

func TestStaticOracleEverywhereFailure(t *testing.T) {
	// The Theorem 3.1 attack pattern: F(i,j) = V \ {i,j} reduces a
	// connectivity query to adjacency.
	g := gridGraph(t, 3, 3)
	o, _ := BuildStatic(g, 2)
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			f := graph.NewFaultSet()
			for v := 0; v < 9; v++ {
				if v != i && v != j {
					f.AddVertex(v)
				}
			}
			if got, want := o.Connected(i, j, f), g.HasEdge(i, j); got != want {
				t.Errorf("everywhere-failure query (%d,%d) = %v, adjacency = %v", i, j, got, want)
			}
		}
	}
}

func TestDynamicOracleBasic(t *testing.T) {
	g := gridGraph(t, 6, 6)
	d, err := NewDynamic(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := d.Distance(0, 35); !ok || got < 10 || got > 30 {
		t.Fatalf("initial Distance(0,35) = (%d,%v)", got, ok)
	}
	if err := d.FailVertex(7); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Distance(7, 0); ok {
		t.Error("failed vertex must be unreachable")
	}
	if err := d.RecoverVertex(7); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Distance(7, 0); !ok {
		t.Error("recovered vertex must answer again")
	}
}

func TestDynamicOracleMatchesExactUnderChurn(t *testing.T) {
	g := gridGraph(t, 6, 6)
	d, err := NewDynamic(g, 2, 3) // tiny threshold to force rebuilds
	if err != nil {
		t.Fatal(err)
	}
	live := graph.NewFaultSet() // mirror of the failed set
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 60; step++ {
		v := rng.Intn(36)
		if rng.Intn(2) == 0 {
			if err := d.FailVertex(v); err != nil {
				t.Fatal(err)
			}
			live.AddVertex(v)
		} else {
			if err := d.RecoverVertex(v); err != nil {
				t.Fatal(err)
			}
			live.RemoveVertex(v)
		}
		u, w := rng.Intn(36), rng.Intn(36)
		want := g.DistAvoiding(u, w, live)
		got, ok := d.Distance(u, w)
		if graph.Reachable(want) != ok {
			t.Fatalf("step %d: (%d,%d) ok=%v, want reachable=%v (|F|=%d)",
				step, u, w, ok, graph.Reachable(want), live.Size())
		}
		if ok && (got < int64(want) || float64(got) > 3*float64(want)+1e-9) {
			t.Fatalf("step %d: (%d,%d) got %d, true %d", step, u, w, got, want)
		}
	}
	if d.Rebuilds() == 0 {
		t.Error("churn past the threshold must trigger rebuilds")
	}
}

func TestDynamicOracleEdges(t *testing.T) {
	g := gridGraph(t, 4, 4)
	d, err := NewDynamic(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.FailEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.FailEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Distance(0, 15); ok {
		t.Error("sealed corner must disconnect")
	}
	if err := d.RecoverEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if got, ok := d.Distance(0, 15); !ok || got < 6 {
		t.Errorf("after recovery Distance(0,15) = (%d,%v)", got, ok)
	}
	if err := d.FailEdge(0, 9); err == nil {
		t.Error("failing a non-edge must error")
	}
}

func TestDynamicOracleRecoverBakedInFailure(t *testing.T) {
	g := gridGraph(t, 5, 5)
	d, err := NewDynamic(g, 2, 1) // threshold 1: second failure rebuilds
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{6, 7, 8} {
		if err := d.FailVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	if d.Rebuilds() == 0 {
		t.Fatal("expected a rebuild after exceeding threshold 1")
	}
	// 6 was baked into the rebuild; recovering it must rebuild again and
	// restore correct answers.
	before := d.Rebuilds()
	if err := d.RecoverVertex(6); err != nil {
		t.Fatal(err)
	}
	if d.Rebuilds() <= before {
		t.Error("recovering a baked-in failure must rebuild")
	}
	live := graph.FaultVertices(7, 8)
	want := g.DistAvoiding(0, 24, live)
	got, ok := d.Distance(0, 24)
	if !ok || got < int64(want) {
		t.Fatalf("post-recovery Distance(0,24) = (%d,%v), true %d", got, ok, want)
	}
}

func TestDynamicOracleOutOfRange(t *testing.T) {
	g := gridGraph(t, 3, 3)
	d, _ := NewDynamic(g, 2, 0)
	if err := d.FailVertex(100); err == nil {
		t.Error("out-of-range failure must error")
	}
	if _, ok := d.Distance(-1, 0); ok {
		t.Error("out-of-range query must not answer")
	}
}

func TestDynamicOracleIdempotentUpdates(t *testing.T) {
	g := gridGraph(t, 4, 4)
	d, _ := NewDynamic(g, 2, 10)
	if err := d.FailVertex(5); err != nil {
		t.Fatal(err)
	}
	if err := d.FailVertex(5); err != nil {
		t.Fatal(err)
	}
	if d.DeltaSize() != 1 {
		t.Errorf("DeltaSize = %d after duplicate failure, want 1", d.DeltaSize())
	}
	if err := d.RecoverVertex(5); err != nil {
		t.Fatal(err)
	}
	if err := d.RecoverVertex(5); err != nil {
		t.Fatal(err)
	}
	if d.DeltaSize() != 0 {
		t.Errorf("DeltaSize = %d after recovery, want 0", d.DeltaSize())
	}
}
