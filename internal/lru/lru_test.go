package lru

import (
	"sync"
	"testing"
)

func newTest(capacity, nshards int) *Cache[int, string] {
	return New[int, string](capacity, nshards, func(k int) uint64 { return HashU32(uint32(k)) })
}

func TestGetPutEvictLRUOrder(t *testing.T) {
	c := New[int, string](3, 1, func(k int) uint64 { return 0 }) // one shard: exact LRU order
	c.Put(1, "a")
	c.Put(2, "b")
	c.Put(3, "c")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	c.Put(4, "d") // evicts 2, the least recently used
	if _, ok := c.Get(2); ok {
		t.Error("2 should have been evicted")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%d should survive", k)
		}
	}
}

func TestPutUpdatesExisting(t *testing.T) {
	c := newTest(4, 2)
	c.Put(7, "old")
	c.Put(7, "new")
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if v, _ := c.Get(7); v != "new" {
		t.Errorf("Get = %q, want new", v)
	}
}

func TestZeroCapacityDisabled(t *testing.T) {
	c := newTest(0, 4)
	c.Put(1, "x")
	if _, ok := c.Get(1); ok {
		t.Error("disabled cache must miss")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache[int, string]
	c.Put(1, "x")
	if _, ok := c.Get(1); ok {
		t.Error("nil cache must miss")
	}
	if c.Len() != 0 || c.ShardLens() != nil {
		t.Error("nil cache must report empty")
	}
	c.Flush() // must not panic
}

func TestFlush(t *testing.T) {
	c := newTest(16, 4)
	for i := 0; i < 10; i++ {
		c.Put(i, "v")
	}
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("Len after Flush = %d", c.Len())
	}
	if _, ok := c.Get(3); ok {
		t.Error("Get after Flush should miss")
	}
}

func TestShardLens(t *testing.T) {
	c := newTest(1024, 8)
	for i := 0; i < 256; i++ {
		c.Put(i, "v")
	}
	lens := c.ShardLens()
	if len(lens) != 8 {
		t.Fatalf("ShardLens has %d entries, want 8", len(lens))
	}
	total, used := 0, 0
	for _, n := range lens {
		total += n
		if n > 0 {
			used++
		}
	}
	if total != 256 {
		t.Errorf("shard total = %d, want 256", total)
	}
	if used < 4 {
		t.Errorf("only %d/8 shards used — HashU32 spreads badly", used)
	}
}

func TestCapacitySplitAcrossShards(t *testing.T) {
	c := newTest(8, 4) // 2 per shard
	for i := 0; i < 100; i++ {
		c.Put(i, "v")
	}
	if c.Len() > 8 {
		t.Errorf("Len = %d exceeds capacity 8", c.Len())
	}
}

func TestConcurrent(t *testing.T) {
	c := newTest(128, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := (w*31 + i) % 200
				switch i % 4 {
				case 0:
					c.Put(k, "v")
				case 3:
					if i%100 == 99 {
						c.Flush()
					}
				default:
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 128+8 {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
}
