// Package lru provides a sharded least-recently-used cache: a fixed
// total capacity spread over independently locked shards, so concurrent
// readers on different shards never contend. It backs the hot-path
// caches of the repo — extracted labels in core.Scheme, decoded labels
// in labelstore.Store, and query answers in the server — which all share
// the same shape: small fixed-size maps hammered by many goroutines.
//
// The zero-capacity cache is valid and caches nothing. Hit/miss
// accounting is left to callers (they own the metrics lifecycle); the
// cache itself only moves entries.
package lru

import "sync"

// Cache is a sharded LRU from K to V. The shard of a key is chosen by
// the caller-supplied hash function, so callers control how their key
// distribution spreads (e.g. mixing both endpoints of a query pair).
type Cache[K comparable, V any] struct {
	shards []shard[K, V]
	perCap int // capacity per shard; 0 disables caching
	hash   func(K) uint64
}

type shard[K comparable, V any] struct {
	mu    sync.Mutex
	byKey map[K]*node[K, V]
	// Intrusive doubly-linked LRU list: head is most recent, tail least.
	head, tail *node[K, V]
}

type node[K comparable, V any] struct {
	key        K
	val        V
	prev, next *node[K, V]
}

// New builds a cache with the given total capacity spread over nshards
// shards. capacity <= 0 disables caching (every Get misses, every Put is
// dropped).
func New[K comparable, V any](capacity, nshards int, hash func(K) uint64) *Cache[K, V] {
	if nshards < 1 {
		nshards = 1
	}
	perCap := 0
	if capacity > 0 {
		perCap = (capacity + nshards - 1) / nshards
	}
	c := &Cache[K, V]{shards: make([]shard[K, V], nshards), perCap: perCap, hash: hash}
	for i := range c.shards {
		c.shards[i].byKey = make(map[K]*node[K, V])
	}
	return c
}

func (c *Cache[K, V]) shard(k K) *shard[K, V] {
	return &c.shards[c.hash(k)%uint64(len(c.shards))]
}

// Get returns the cached value for k, if present, and marks it most
// recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	var zero V
	if c == nil || c.perCap == 0 {
		return zero, false
	}
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	nd, ok := sh.byKey[k]
	if !ok {
		return zero, false
	}
	sh.moveToFront(nd)
	return nd.val, true
}

// Put stores the value for k, evicting the least recently used entry of
// the shard when it is full.
func (c *Cache[K, V]) Put(k K, v V) {
	if c == nil || c.perCap == 0 {
		return
	}
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if nd, ok := sh.byKey[k]; ok {
		nd.val = v
		sh.moveToFront(nd)
		return
	}
	for len(sh.byKey) >= c.perCap {
		last := sh.tail
		sh.unlink(last)
		delete(sh.byKey, last.key)
	}
	nd := &node[K, V]{key: k, val: v}
	sh.pushFront(nd)
	sh.byKey[k] = nd
}

// Flush drops every entry.
func (c *Cache[K, V]) Flush() {
	if c == nil {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.byKey = make(map[K]*node[K, V])
		sh.head, sh.tail = nil, nil
		sh.mu.Unlock()
	}
}

// ShardLens returns the entry count of each shard — observability for
// tests and dashboards that want to see whether the key hash spreads.
func (c *Cache[K, V]) ShardLens() []int {
	if c == nil {
		return nil
	}
	out := make([]int, len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		out[i] = len(sh.byKey)
		sh.mu.Unlock()
	}
	return out
}

// Len returns the number of cached entries across all shards.
func (c *Cache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.byKey)
		sh.mu.Unlock()
	}
	return n
}

func (sh *shard[K, V]) pushFront(nd *node[K, V]) {
	nd.prev = nil
	nd.next = sh.head
	if sh.head != nil {
		sh.head.prev = nd
	}
	sh.head = nd
	if sh.tail == nil {
		sh.tail = nd
	}
}

func (sh *shard[K, V]) unlink(nd *node[K, V]) {
	if nd.prev != nil {
		nd.prev.next = nd.next
	} else {
		sh.head = nd.next
	}
	if nd.next != nil {
		nd.next.prev = nd.prev
	} else {
		sh.tail = nd.prev
	}
	nd.prev, nd.next = nil, nil
}

func (sh *shard[K, V]) moveToFront(nd *node[K, V]) {
	if sh.head == nd {
		return
	}
	sh.unlink(nd)
	sh.pushFront(nd)
}

// HashU32 is a ready-made shard hash for 32-bit integer keys
// (Fibonacci multiplicative hashing).
func HashU32(k uint32) uint64 { return uint64(k) * 0x9E3779B97F4A7C15 >> 32 }

// HashU64 is a ready-made shard hash for 64-bit integer keys.
func HashU64(k uint64) uint64 { return (k ^ k>>32) * 0x9E3779B97F4A7C15 >> 32 }
