// Package bitio implements bit-granular encoding used to serialize vertex
// labels, so that the label-length accounting of the experiments is exact in
// bits rather than rounded to machine words. It provides a bit writer and
// reader with fixed-width fields, LEB-style varints, and Elias gamma/delta
// universal codes for small nonnegative integers.
package bitio

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrOutOfBounds is returned when a read runs past the end of the stream.
var ErrOutOfBounds = errors.New("bitio: read past end of stream")

// Writer accumulates bits most-significant-first into a byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit int // total bits written
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the encoded bytes; the final partial byte (if any) is
// zero-padded. The returned slice aliases internal storage.
func (w *Writer) Bytes() []byte { return w.buf }

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[w.nbit/8] |= 1 << (7 - uint(w.nbit%8))
	}
	w.nbit++
}

// WriteBits appends the low `width` bits of v, most significant first.
// width must be in [0, 64].
func (w *Writer) WriteBits(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitio: invalid width %d", width))
	}
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(uint(v>>uint(i)) & 1)
	}
}

// WriteUvarint appends v in a 7-bits-per-group varint (bit-granular LEB128).
// Each group is prefixed by a continuation bit.
func (w *Writer) WriteUvarint(v uint64) {
	for {
		group := v & 0x7f
		v >>= 7
		if v == 0 {
			w.WriteBit(0)
			w.WriteBits(group, 7)
			return
		}
		w.WriteBit(1)
		w.WriteBits(group, 7)
	}
}

// WriteGamma appends v >= 0 in Elias gamma code (encodes v+1 so zero is
// representable). Gamma uses 2*floor(log2(v+1))+1 bits.
func (w *Writer) WriteGamma(v uint64) {
	x := v + 1
	nb := bits.Len64(x) // number of significant bits
	for i := 0; i < nb-1; i++ {
		w.WriteBit(0)
	}
	w.WriteBits(x, nb)
}

// WriteDelta appends v >= 0 in Elias delta code (encodes v+1). Delta is
// asymptotically shorter than gamma for large values.
func (w *Writer) WriteDelta(v uint64) {
	x := v + 1
	nb := bits.Len64(x)
	w.WriteGamma(uint64(nb - 1))
	// Emit the nb-1 low bits (the leading 1 is implied by the length).
	w.WriteBits(x&((1<<uint(nb-1))-1), nb-1)
}

// Reader consumes bits most-significant-first from a byte buffer.
type Reader struct {
	buf  []byte
	pos  int // bit cursor
	nbit int // total readable bits
}

// NewReader returns a reader over the first nbits bits of buf. Pass
// 8*len(buf) to read everything.
func NewReader(buf []byte, nbits int) *Reader {
	if nbits > 8*len(buf) {
		nbits = 8 * len(buf)
	}
	return &Reader{buf: buf, nbit: nbits}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// ReadBit reads one bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= r.nbit {
		return 0, ErrOutOfBounds
	}
	b := (r.buf[r.pos/8] >> (7 - uint(r.pos%8))) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits reads a width-bit unsigned value, most significant bit first.
func (r *Reader) ReadBits(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("bitio: invalid width %d", width)
	}
	var v uint64
	for i := 0; i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUvarint reads a value written by WriteUvarint.
func (r *Reader) ReadUvarint() (uint64, error) {
	var v uint64
	for shift := uint(0); ; shift += 7 {
		if shift > 63 {
			return 0, errors.New("bitio: varint overflows uint64")
		}
		cont, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		group, err := r.ReadBits(7)
		if err != nil {
			return 0, err
		}
		v |= group << shift
		if cont == 0 {
			return v, nil
		}
	}
}

// ReadGamma reads a value written by WriteGamma.
func (r *Reader) ReadGamma() (uint64, error) {
	zeros := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 63 {
			return 0, errors.New("bitio: gamma prefix too long")
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return (1<<uint(zeros) | rest) - 1, nil
}

// ReadDelta reads a value written by WriteDelta.
func (r *Reader) ReadDelta() (uint64, error) {
	nbMinus1, err := r.ReadGamma()
	if err != nil {
		return 0, err
	}
	if nbMinus1 > 63 {
		return 0, errors.New("bitio: delta length too long")
	}
	low, err := r.ReadBits(int(nbMinus1))
	if err != nil {
		return 0, err
	}
	return (1<<nbMinus1 | low) - 1, nil
}

// UvarintLen returns the number of bits WriteUvarint(v) emits: 8 per
// 7-bit group (continuation bit + payload).
func UvarintLen(v uint64) int {
	nb := bits.Len64(v)
	if nb == 0 {
		nb = 1
	}
	return 8 * ((nb + 6) / 7)
}

// GammaLen returns the number of bits WriteGamma(v) emits.
func GammaLen(v uint64) int {
	nb := bits.Len64(v + 1)
	return 2*nb - 1
}

// DeltaLen returns the number of bits WriteDelta(v) emits.
func DeltaLen(v uint64) int {
	nb := bits.Len64(v + 1)
	return GammaLen(uint64(nb-1)) + nb - 1
}
