package bitio

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	var w Writer
	w.WriteBits(0b1011, 4)
	w.WriteBits(0, 3)
	w.WriteBits(0xffff, 16)
	if w.Len() != 23 {
		t.Fatalf("Len = %d, want 23", w.Len())
	}
	r := NewReader(w.Bytes(), w.Len())
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Errorf("first field = %b, want 1011", v)
	}
	if v, _ := r.ReadBits(3); v != 0 {
		t.Errorf("second field = %b, want 0", v)
	}
	if v, _ := r.ReadBits(16); v != 0xffff {
		t.Errorf("third field = %x, want ffff", v)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestReadPastEnd(t *testing.T) {
	var w Writer
	w.WriteBits(5, 3)
	r := NewReader(w.Bytes(), w.Len())
	if _, err := r.ReadBits(4); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("err = %v, want ErrOutOfBounds", err)
	}
}

func TestZeroWidth(t *testing.T) {
	var w Writer
	w.WriteBits(123, 0)
	if w.Len() != 0 {
		t.Errorf("zero-width write emitted %d bits", w.Len())
	}
	r := NewReader(nil, 0)
	if v, err := r.ReadBits(0); err != nil || v != 0 {
		t.Errorf("zero-width read = (%d,%v), want (0,nil)", v, err)
	}
}

func TestGammaKnownValues(t *testing.T) {
	// gamma(v) encodes v+1: value 0 -> "1" (1 bit), value 1 -> "010",
	// value 2 -> "011", value 3 -> "00100".
	cases := []struct {
		v    uint64
		bits int
	}{{0, 1}, {1, 3}, {2, 3}, {3, 5}, {6, 5}, {7, 7}, {100, 13}}
	for _, c := range cases {
		var w Writer
		w.WriteGamma(c.v)
		if w.Len() != c.bits {
			t.Errorf("gamma(%d) used %d bits, want %d", c.v, w.Len(), c.bits)
		}
		if got := GammaLen(c.v); got != c.bits {
			t.Errorf("GammaLen(%d) = %d, want %d", c.v, got, c.bits)
		}
	}
}

func TestRoundTripAllCodes(t *testing.T) {
	values := []uint64{0, 1, 2, 3, 7, 8, 127, 128, 1 << 20, 1<<40 + 12345, 1<<63 - 1}
	var w Writer
	for _, v := range values {
		w.WriteUvarint(v)
		w.WriteGamma(v % (1 << 32)) // keep gamma prefixes sane
		w.WriteDelta(v)
	}
	r := NewReader(w.Bytes(), w.Len())
	for _, v := range values {
		if got, err := r.ReadUvarint(); err != nil || got != v {
			t.Fatalf("uvarint(%d) round trip = (%d,%v)", v, got, err)
		}
		if got, err := r.ReadGamma(); err != nil || got != v%(1<<32) {
			t.Fatalf("gamma(%d) round trip = (%d,%v)", v, got, err)
		}
		if got, err := r.ReadDelta(); err != nil || got != v {
			t.Fatalf("delta(%d) round trip = (%d,%v)", v, got, err)
		}
	}
}

func TestDeltaShorterThanGammaForLarge(t *testing.T) {
	for _, v := range []uint64{1 << 10, 1 << 20, 1 << 30} {
		if DeltaLen(v) >= GammaLen(v) {
			t.Errorf("delta(%d)=%d bits should beat gamma=%d bits",
				v, DeltaLen(v), GammaLen(v))
		}
	}
}

func TestLenFunctionsMatchWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		v := uint64(rng.Int63()) >> uint(rng.Intn(60))
		var wg, wd Writer
		wg.WriteGamma(v)
		wd.WriteDelta(v)
		if wg.Len() != GammaLen(v) {
			t.Fatalf("GammaLen(%d) = %d, writer used %d", v, GammaLen(v), wg.Len())
		}
		if wd.Len() != DeltaLen(v) {
			t.Fatalf("DeltaLen(%d) = %d, writer used %d", v, DeltaLen(v), wd.Len())
		}
		var wu Writer
		wu.WriteUvarint(v)
		if wu.Len() != UvarintLen(v) {
			t.Fatalf("UvarintLen(%d) = %d, writer used %d", v, UvarintLen(v), wu.Len())
		}
	}
}

// Property: any interleaved sequence of writes reads back identically.
func TestInterleavedRoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type op struct {
			kind  int
			v     uint64
			width int
		}
		n := 1 + rng.Intn(60)
		ops := make([]op, n)
		var w Writer
		for i := range ops {
			o := op{kind: rng.Intn(4)}
			switch o.kind {
			case 0:
				o.width = rng.Intn(65)
				o.v = uint64(rng.Int63())
				if o.width < 64 {
					o.v &= (1 << uint(o.width)) - 1
				}
				w.WriteBits(o.v, o.width)
			case 1:
				o.v = uint64(rng.Int63()) >> uint(rng.Intn(63))
				w.WriteUvarint(o.v)
			case 2:
				o.v = uint64(rng.Intn(1 << 20))
				w.WriteGamma(o.v)
			case 3:
				o.v = uint64(rng.Int63()) >> uint(rng.Intn(63))
				w.WriteDelta(o.v)
			}
			ops[i] = o
		}
		r := NewReader(w.Bytes(), w.Len())
		for _, o := range ops {
			var got uint64
			var err error
			switch o.kind {
			case 0:
				got, err = r.ReadBits(o.width)
			case 1:
				got, err = r.ReadUvarint()
			case 2:
				got, err = r.ReadGamma()
			case 3:
				got, err = r.ReadDelta()
			}
			if err != nil || got != o.v {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReaderTruncatedBuffer(t *testing.T) {
	var w Writer
	w.WriteDelta(1 << 30)
	// Hand the reader fewer bits than written: must error, not loop.
	r := NewReader(w.Bytes(), w.Len()-5)
	if _, err := r.ReadDelta(); err == nil {
		t.Error("expected error reading truncated delta")
	}
}
