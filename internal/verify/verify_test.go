package verify

import (
	"strings"
	"testing"

	"fsdl/internal/gen"
	"fsdl/internal/graph"
)

func TestVerifyGridClean(t *testing.T) {
	rep, err := Scheme(gen.Grid2D(6, 6), Options{
		Epsilon:      2,
		MaxFaults:    2,
		MaxQueries:   400,
		CheckRouting: true,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if rep.Queries == 0 || rep.Routes == 0 {
		t.Fatalf("verifier did nothing: %+v", rep)
	}
}

func TestVerifyExhaustiveTinyGraph(t *testing.T) {
	// 3x3 grid: exhaustive pairs + single faults fit the budget.
	rep, err := Scheme(gen.Grid2D(3, 3), Options{
		Epsilon:    2,
		MaxFaults:  1,
		MaxQueries: 2000,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("violations on tiny grid: %v", rep.Violations)
	}
	// 36 pairs + 36*9 single-fault triples + sampled remainder.
	if rep.Queries < 300 {
		t.Errorf("expected exhaustive coverage, got %d queries", rep.Queries)
	}
}

func TestVerifyCatchesBadEpsilon(t *testing.T) {
	if _, err := Scheme(gen.Path(5), Options{Epsilon: 0}); err == nil {
		t.Error("epsilon 0 must error")
	}
}

func TestVerifyDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(10)
	for i := 0; i+1 < 5; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(5+i, 5+i+1)
	}
	rep, err := Scheme(b.MustBuild(), Options{Epsilon: 2, MaxFaults: 1, MaxQueries: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("violations on disconnected graph: %v", rep.Violations)
	}
}

func TestVerifyCycleWithRouting(t *testing.T) {
	c, err := gen.Cycle(24)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Scheme(c, Options{Epsilon: 2, MaxFaults: 2, MaxQueries: 500, CheckRouting: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("violations on cycle: %v", rep.Violations)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: "safety", Src: 1, Dst: 2, Faults: []int{3}, Detail: "x"}
	s := v.String()
	for _, want := range []string{"safety", "(1,2)", "[3]", "x"} {
		if !strings.Contains(s, want) {
			t.Errorf("violation string %q missing %q", s, want)
		}
	}
}

func TestVerifyTree(t *testing.T) {
	tree, err := gen.BalancedBinaryTree(5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Scheme(tree, Options{Epsilon: 1.5, MaxFaults: 2, MaxQueries: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("violations on tree: %v", rep.Violations)
	}
}
