// Package verify implements an end-to-end checker for the scheme's
// guarantees on a concrete graph: it compares forbidden-set queries (and
// optionally routes) against exact recomputation over enumerated or
// sampled (s, t, F) triples, and reports every violation of
//
//   - safety: estimates below the true surviving distance,
//   - connectivity: ok-flag disagreeing with true reachability,
//   - stretch: estimates above (1+ε)·d_{G\F},
//   - routing: undelivered or fault-touching or over-long routes.
//
// It backs the `fsdl verify` CLI command and the cross-package integration
// tests; on small graphs with MaxFaults ≤ 2 the check is exhaustive.
package verify

import (
	"fmt"
	"math/rand"

	"fsdl/internal/core"
	"fsdl/internal/graph"
	"fsdl/internal/routing"
)

// Options configures a verification run.
type Options struct {
	// Epsilon is the scheme precision (required, > 0).
	Epsilon float64
	// MaxFaults bounds the fault-set sizes exercised (vertex faults; edge
	// faults get MaxFaults/2, rounded up when MaxFaults ≥ 1).
	MaxFaults int
	// MaxQueries caps the total number of (s,t,F) triples; beyond the
	// exhaustive budget the checker samples. ≤ 0 means 2000.
	MaxQueries int
	// CheckRouting also routes every connected query and validates the
	// path.
	CheckRouting bool
	// Seed drives sampling.
	Seed int64
}

// Violation describes one failed check.
type Violation struct {
	Kind     string
	Src, Dst int
	Faults   []int
	Detail   string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: (%d,%d) F=%v: %s", v.Kind, v.Src, v.Dst, v.Faults, v.Detail)
}

// Report is the outcome of a verification run.
type Report struct {
	Queries    int
	Routes     int
	Violations []Violation
}

// OK reports whether no violation was found.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Scheme verifies a graph end to end.
func Scheme(g *graph.Graph, opts Options) (*Report, error) {
	if opts.Epsilon <= 0 {
		return nil, fmt.Errorf("verify: epsilon must be positive")
	}
	if opts.MaxQueries <= 0 {
		opts.MaxQueries = 2000
	}
	s, err := core.BuildScheme(g, opts.Epsilon)
	if err != nil {
		return nil, err
	}
	s.SetCacheLimit(4096)
	if err := s.Hierarchy().VerifyInvariants(); err != nil {
		return nil, fmt.Errorf("verify: net hierarchy broken: %w", err)
	}
	// Label integrity: every label validates structurally and survives a
	// serialization round trip (sampled on large graphs).
	step := 1
	if n := g.NumVertices(); n > 256 {
		step = n / 256
	}
	for v := 0; v < g.NumVertices(); v += step {
		l := s.Label(v)
		if err := l.Validate(); err != nil {
			return nil, fmt.Errorf("verify: label %d invalid: %w", v, err)
		}
		buf, nbits := l.Encode()
		if _, err := core.DecodeLabel(buf, nbits); err != nil {
			return nil, fmt.Errorf("verify: label %d round trip: %w", v, err)
		}
	}
	var rs *routing.Scheme
	if opts.CheckRouting {
		rs = routing.New(s)
	}
	rep := &Report{}
	rng := rand.New(rand.NewSource(opts.Seed))
	n := g.NumVertices()
	budget := opts.MaxQueries

	check := func(src, dst int, f *graph.FaultSet) {
		if budget <= 0 || f.HasVertex(src) || f.HasVertex(dst) {
			return
		}
		budget--
		rep.Queries++
		truth := g.DistAvoiding(src, dst, f)
		est, ok := s.Distance(src, dst, f)
		faults := f.Vertices()
		for _, e := range f.Edges() {
			faults = append(faults, e[0], e[1])
		}
		if !graph.Reachable(truth) {
			if ok {
				rep.Violations = append(rep.Violations, Violation{
					Kind: "connectivity", Src: src, Dst: dst, Faults: faults,
					Detail: fmt.Sprintf("reported %d but truly disconnected", est),
				})
			}
			return
		}
		if !ok {
			rep.Violations = append(rep.Violations, Violation{
				Kind: "connectivity", Src: src, Dst: dst, Faults: faults,
				Detail: fmt.Sprintf("reported disconnected, true distance %d", truth),
			})
			return
		}
		if est < int64(truth) {
			rep.Violations = append(rep.Violations, Violation{
				Kind: "safety", Src: src, Dst: dst, Faults: faults,
				Detail: fmt.Sprintf("estimate %d < true %d", est, truth),
			})
		}
		if truth > 0 && float64(est) > (1+opts.Epsilon)*float64(truth)+1e-9 {
			rep.Violations = append(rep.Violations, Violation{
				Kind: "stretch", Src: src, Dst: dst, Faults: faults,
				Detail: fmt.Sprintf("estimate %d > (1+%g)*%d", est, opts.Epsilon, truth),
			})
		}
		if rs != nil {
			rep.Routes++
			r, ok := rs.RouteWithFaults(src, dst, f)
			if !ok {
				rep.Violations = append(rep.Violations, Violation{
					Kind: "routing", Src: src, Dst: dst, Faults: faults,
					Detail: "route not found though connected",
				})
				return
			}
			if verr := validRoute(g, r, src, dst, f); verr != "" {
				rep.Violations = append(rep.Violations, Violation{
					Kind: "routing", Src: src, Dst: dst, Faults: faults, Detail: verr,
				})
				return
			}
			if truth > 0 && float64(r.Length) > (1+opts.Epsilon)*float64(truth)+1e-9 {
				rep.Violations = append(rep.Violations, Violation{
					Kind: "routing-stretch", Src: src, Dst: dst, Faults: faults,
					Detail: fmt.Sprintf("route length %d > (1+%g)*%d", r.Length, opts.Epsilon, truth),
				})
			}
		}
	}

	// Exhaustive over pairs with F = ∅ and |F| = 1 when the budget
	// allows; otherwise sampled.
	exhaustivePairs := n*n <= opts.MaxQueries/2
	if exhaustivePairs {
		for src := 0; src < n; src++ {
			for dst := src + 1; dst < n; dst++ {
				check(src, dst, nil)
			}
		}
		if opts.MaxFaults >= 1 && n*n*n <= opts.MaxQueries {
			for src := 0; src < n; src++ {
				for dst := src + 1; dst < n; dst++ {
					for fv := 0; fv < n; fv++ {
						check(src, dst, graph.FaultVertices(fv))
					}
				}
			}
		}
	}
	for budget > 0 {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			continue
		}
		f := graph.NewFaultSet()
		if opts.MaxFaults > 0 {
			for f.NumVertices() < rng.Intn(opts.MaxFaults+1) {
				v := rng.Intn(n)
				if v != src && v != dst {
					f.AddVertex(v)
				}
			}
			// Mix in edge faults on existing edges.
			for i := 0; i < rng.Intn(opts.MaxFaults/2+1); i++ {
				u := rng.Intn(n)
				nb := g.Neighbors(u)
				if len(nb) > 0 {
					f.AddEdge(u, int(nb[rng.Intn(len(nb))]))
				}
			}
		}
		check(src, dst, f)
	}
	return rep, nil
}

func validRoute(g *graph.Graph, r routing.Route, src, dst int, f *graph.FaultSet) string {
	if len(r.Path) == 0 || r.Path[0] != src || r.Path[len(r.Path)-1] != dst {
		return fmt.Sprintf("path endpoints wrong: %v", r.Path)
	}
	for i := 1; i < len(r.Path); i++ {
		u, v := r.Path[i-1], r.Path[i]
		if !g.HasEdge(u, v) {
			return fmt.Sprintf("hop (%d,%d) is not an edge", u, v)
		}
		if f.HasVertex(u) || f.HasVertex(v) {
			return fmt.Sprintf("hop (%d,%d) touches a failed vertex", u, v)
		}
		if f.HasEdge(u, v) {
			return fmt.Sprintf("hop (%d,%d) uses a failed edge", u, v)
		}
	}
	return ""
}
