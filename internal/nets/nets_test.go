package nets

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"fsdl/internal/graph"
)

func pathGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

func gridGraph(t testing.TB, w, h int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(y*w+x, y*w+x+1)
			}
			if y+1 < h {
				b.AddEdge(y*w+x, (y+1)*w+x)
			}
		}
	}
	return b.MustBuild()
}

func randomConnected(t testing.TB, n int, rng *rand.Rand) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	added := map[[2]int]bool{}
	add := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if u == v || added[[2]int{u, v}] {
			return
		}
		added[[2]int{u, v}] = true
		b.AddEdge(u, v)
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		add(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < n/2; i++ {
		add(rng.Intn(n), rng.Intn(n))
	}
	return b.MustBuild()
}

func TestNumLevels(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 3}, {4, 3}, {5, 4}, {8, 4}, {9, 5}, {1024, 11},
	}
	for _, c := range cases {
		if got := NumLevels(c.n); got != c.want {
			t.Errorf("NumLevels(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestHierarchyInvariantsPath(t *testing.T) {
	g := pathGraph(t, 33)
	h, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyInvariantsGrid(t *testing.T) {
	g := gridGraph(t, 9, 7)
	h, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyInvariantsDisconnected(t *testing.T) {
	// Two path components.
	b := graph.NewBuilder(12)
	for i := 0; i+1 < 6; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(6+i, 6+i+1)
	}
	g := b.MustBuild()
	h, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
	// Nearest net point must stay inside the component.
	for i := 0; i <= h.MaxLevel(); i++ {
		for v := 0; v < 12; v++ {
			p, d := h.Nearest(i, v)
			if !graph.Reachable(d) {
				t.Fatalf("level %d vertex %d: no net point", i, v)
			}
			if (v < 6) != (p < 6) {
				t.Fatalf("level %d: nearest(%d) = %d crosses components", i, v, p)
			}
		}
	}
}

func TestN0IsAllVertices(t *testing.T) {
	g := gridGraph(t, 5, 5)
	h, _ := Build(g)
	if len(h.Level(0)) != 25 {
		t.Errorf("|N_0| = %d, want 25", len(h.Level(0)))
	}
	for v := 0; v < 25; v++ {
		p, d := h.Nearest(0, v)
		if p != v || d != 0 {
			t.Errorf("M_0(%d) = (%d,%d), want (%d,0)", v, p, d, v)
		}
	}
}

func TestTopLevelIsSmall(t *testing.T) {
	// N_L with L = ⌈log n⌉ is (n-1)-dominating, hence one point per
	// connected component.
	g := pathGraph(t, 50)
	h, _ := Build(g)
	if got := len(h.Level(h.MaxLevel())); got != 1 {
		t.Errorf("|N_L| = %d, want 1 on a connected graph", got)
	}
}

func TestLevelsShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnected(t, 200, rng)
	h, _ := Build(g)
	for i := 1; i <= h.MaxLevel(); i++ {
		if len(h.Level(i)) > len(h.Level(i-1)) {
			t.Errorf("|N_%d| = %d > |N_%d| = %d", i, len(h.Level(i)), i-1, len(h.Level(i-1)))
		}
	}
}

func TestNearestIsActuallyNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomConnected(t, 80, rng)
	h, _ := Build(g)
	for i := 0; i <= h.MaxLevel(); i++ {
		members := h.Level(i)
		for v := 0; v < 80; v++ {
			dist := g.BFS(v)
			best := graph.Infinity
			for _, m := range members {
				if graph.Reachable(dist[m]) && (!graph.Reachable(best) || dist[m] < best) {
					best = dist[m]
				}
			}
			_, got := h.Nearest(i, v)
			if got != best {
				t.Fatalf("level %d vertex %d: Nearest dist %d, true nearest %d", i, v, got, best)
			}
		}
	}
}

func TestInNetMatchesLevelMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomConnected(t, 120, rng)
	h, _ := Build(g)
	for i := 0; i <= h.MaxLevel(); i++ {
		inLevel := map[int32]bool{}
		for _, v := range h.Level(i) {
			inLevel[v] = true
		}
		for v := 0; v < 120; v++ {
			if h.InNet(v, i) != inLevel[int32(v)] {
				t.Fatalf("InNet(%d,%d) = %v disagrees with Level", v, i, h.InNet(v, i))
			}
		}
	}
}

func TestBuildWithOrderValidation(t *testing.T) {
	g := pathGraph(t, 4)
	if _, err := BuildWithOrder(g, []int{0, 1, 2}); err == nil {
		t.Error("short order must be rejected")
	}
	if _, err := BuildWithOrder(g, []int{0, 1, 2, 2}); err == nil {
		t.Error("non-permutation must be rejected")
	}
	if _, err := BuildWithOrder(g, []int{3, 2, 1, 0}); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
}

func TestEmptyAndSingletonGraphs(t *testing.T) {
	empty := graph.NewBuilder(0).MustBuild()
	h, err := Build(empty)
	if err != nil {
		t.Fatalf("empty: %v", err)
	}
	if err := h.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
	single := graph.NewBuilder(1).MustBuild()
	h1, err := Build(single)
	if err != nil {
		t.Fatalf("singleton: %v", err)
	}
	if len(h1.Level(0)) != 1 {
		t.Errorf("singleton |N_0| = %d, want 1", len(h1.Level(0)))
	}
}

// Property: on random connected graphs with random greedy orders, all
// hierarchy invariants hold.
func TestInvariantsProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(56)
		g := randomConnected(t, n, rng)
		h, err := BuildWithOrder(g, rng.Perm(n))
		if err != nil {
			return false
		}
		return h.VerifyInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Lemma 2.2 packing bound on the 2-D grid (doubling dimension α ≤ 2):
// |B(v,R) ∩ N_i| ≤ 2·(4R/2^i)^α.
func TestPackingBoundGrid(t *testing.T) {
	g := gridGraph(t, 16, 16)
	h, _ := Build(g)
	const alpha = 2.0
	for i := 1; i <= h.MaxLevel(); i++ {
		members := h.Level(i)
		for _, v := range []int{0, 17 + 16*3, 255} {
			dist := g.BFS(v)
			for _, R := range []int32{2, 4, 8, 16, 31} {
				if R < int32(1)<<uint(i) {
					continue // Fact 1 requires R ≥ r = 2^i
				}
				count := 0
				for _, m := range members {
					if graph.Reachable(dist[m]) && dist[m] <= R {
						count++
					}
				}
				ratio := float64(4*R) / float64(int32(1)<<uint(i))
				bound := 2 * ratio * ratio // 2·(4R/2^i)^2
				if float64(count) > bound {
					t.Errorf("level %d, v=%d, R=%d: |B∩N_i| = %d > bound %.1f",
						i, v, R, count, bound)
				}
			}
		}
	}
}

func TestFromNetLevelsRestoresHierarchy(t *testing.T) {
	g := gridGraph(t, 8, 7)
	orig, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	netLevel := make([]int, g.NumVertices())
	for v := range netLevel {
		netLevel[v] = orig.NetLevelOf(v)
	}
	restored, err := FromNetLevels(g, netLevel)
	if err != nil {
		t.Fatal(err)
	}
	if restored.MaxLevel() != orig.MaxLevel() {
		t.Fatalf("MaxLevel %d -> %d", orig.MaxLevel(), restored.MaxLevel())
	}
	for i := 0; i <= orig.MaxLevel(); i++ {
		a, b := orig.Level(i), restored.Level(i)
		if len(a) != len(b) {
			t.Fatalf("level %d size %d -> %d", i, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("level %d member %d differs", i, k)
			}
		}
		for v := 0; v < g.NumVertices(); v++ {
			_, da := orig.Nearest(i, v)
			_, db := restored.Nearest(i, v)
			if da != db {
				t.Fatalf("level %d vertex %d nearest dist %d -> %d", i, v, da, db)
			}
		}
	}
	if err := restored.VerifyInvariants(); err != nil {
		t.Fatalf("restored hierarchy invalid: %v", err)
	}
}

func TestFromNetLevelsValidation(t *testing.T) {
	g := pathGraph(t, 8)
	if _, err := FromNetLevels(g, []int{0, 1}); err == nil {
		t.Error("wrong length must be rejected")
	}
	bad := make([]int, 8)
	bad[3] = 99
	if _, err := FromNetLevels(g, bad); err == nil {
		t.Error("out-of-range level must be rejected")
	}
}

// TestBuildWorkersDeterminism pins the pool contract at the hierarchy
// layer: every W-set, level, net-level assignment, and nearest-net-point
// table must be identical for any worker count (the greedy scan within a
// level is sequential; only whole levels run in parallel).
func TestBuildWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	graphs := map[string]*graph.Graph{
		"grid-11x7": gridGraph(t, 11, 7),
		"path-90":   pathGraph(t, 90),
		"random-60": randomConnected(t, 60, rng),
	}
	for name, g := range graphs {
		ref, err := BuildWorkers(g, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{2, 4, 8, 0} {
			h, err := BuildWorkers(g, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if h.MaxLevel() != ref.MaxLevel() {
				t.Fatalf("%s workers=%d: MaxLevel %d, want %d", name, workers, h.MaxLevel(), ref.MaxLevel())
			}
			for j := 0; j <= ref.MaxLevel(); j++ {
				if !slices.Equal(h.WSet(j), ref.WSet(j)) {
					t.Fatalf("%s workers=%d: W(2^%d) differs", name, workers, j)
				}
				if !slices.Equal(h.Level(j), ref.Level(j)) {
					t.Fatalf("%s workers=%d: level %d differs", name, workers, j)
				}
			}
			if !slices.Equal(h.NetLevels(), ref.NetLevels()) {
				t.Fatalf("%s workers=%d: netLevel differs", name, workers)
			}
			for v := 0; v < g.NumVertices(); v++ {
				for j := 0; j <= ref.MaxLevel(); j++ {
					hp, hd := h.Nearest(j, v)
					rp, rd := ref.Nearest(j, v)
					if hp != rp || hd != rd {
						t.Fatalf("%s workers=%d: Nearest(%d,%d) = (%d,%d), want (%d,%d)",
							name, workers, j, v, hp, hd, rp, rd)
					}
				}
			}
			if err := h.VerifyInvariants(); err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
		}
	}
}

// TestVerifyInvariantsCatchesSeparationViolation manufactures a W-set
// with two points closer than the required 2^j separation and checks the
// truncated-BFS separation pass still rejects it.
func TestVerifyInvariantsCatchesSeparationViolation(t *testing.T) {
	g := pathGraph(t, 32)
	h, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxLevel() < 1 {
		t.Fatal("need at least two levels")
	}
	// Corrupt W(2): append a vertex adjacent to an existing W-point, at
	// distance 1 < 2.
	w := h.wsets[1]
	if len(w) == 0 {
		t.Fatal("W(2) empty")
	}
	v := w[0]
	var bad int32 = -1
	for _, u := range g.Neighbors(int(v)) {
		found := false
		for _, x := range w {
			if x == u {
				found = true
				break
			}
		}
		if !found {
			bad = u
			break
		}
	}
	if bad < 0 {
		t.Fatal("no neighbor outside W(2)")
	}
	h.wsets[1] = append(append([]int32{}, w...), bad)
	if err := h.VerifyInvariants(); err == nil {
		t.Fatal("VerifyInvariants accepted a 2^j-separation violation")
	}
}
