// Package nets builds the hierarchy of nets at the heart of the labeling
// scheme of Abraham, Chechik, Gavoille and Peleg: vertex sets
// N_0 ⊇ N_1 ⊇ … ⊇ N_L (L = ⌈log₂ n⌉) where N_i is a (2^i − 1)-dominating
// set of the graph, obtained as N_i = ⋃_{j≥i} W(2^j) with each W(r) the
// greedy r-separated dominating set of Fact 1 (Gupta–Krauthgamer–Lee).
//
// For a graph of doubling dimension α the hierarchy satisfies the packing
// bound of Lemma 2.2: |B(v,R) ∩ N_i| ≤ 2·(4R/2^i)^α for every v, R, i.
package nets

import (
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"fsdl/internal/graph"
)

// Hierarchy is an immutable hierarchy of nets over a graph.
type Hierarchy struct {
	g      *graph.Graph
	levels [][]int32 // levels[i] = members of N_i in increasing order
	wsets  [][]int32 // wsets[j] = members of W(2^j) in selection order
	// netLevel[v] = largest i such that v ∈ N_i (≥ 0 since N_0 = V).
	netLevel []int32
	// nearest[i][v] = M_i(v), the net point of N_i nearest to v (ties
	// broken by BFS order); nearestDist[i][v] = d_G(v, M_i(v)).
	nearest     [][]int32
	nearestDist [][]int32
}

// NumLevels returns L+1, the number of levels 0..L with L = ⌈log₂ n⌉.
func NumLevels(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n-1)) + 1 // ⌈log₂ n⌉ + 1
}

// MaxLevel returns L = ⌈log₂ n⌉, the index of the topmost net.
func (h *Hierarchy) MaxLevel() int { return len(h.levels) - 1 }

// Graph returns the underlying graph.
func (h *Hierarchy) Graph() *graph.Graph { return h.g }

// Level returns the members of N_i in increasing vertex order. The returned
// slice aliases internal storage and must not be modified.
func (h *Hierarchy) Level(i int) []int32 { return h.levels[i] }

// WSet returns the members of the greedy set W(2^j) in selection order.
func (h *Hierarchy) WSet(j int) []int32 { return h.wsets[j] }

// NetLevelOf returns the largest i such that v ∈ N_i.
func (h *Hierarchy) NetLevelOf(v int) int { return int(h.netLevel[v]) }

// NetLevels returns the per-vertex membership function netLevel[v] =
// max{i : v ∈ N_i}. The returned slice aliases internal storage and must
// not be modified; it exists so hot loops can test net membership with a
// direct comparison instead of per-level boolean arrays.
func (h *Hierarchy) NetLevels() []int32 { return h.netLevel }

// InNet reports whether v ∈ N_i. Because the nets are nested this is simply
// NetLevelOf(v) ≥ i.
func (h *Hierarchy) InNet(v, i int) bool { return int(h.netLevel[v]) >= i }

// Nearest returns M_i(v) — the net point of N_i nearest to v — and its
// distance d_G(v, M_i(v)). For connected graphs the distance is < 2^i; in a
// disconnected graph the nearest point is within v's component. The second
// return is graph.Infinity only for a vertex isolated from every net point,
// which cannot happen since N_i dominates every component.
func (h *Hierarchy) Nearest(i, v int) (point int, dist int32) {
	return int(h.nearest[i][v]), h.nearestDist[i][v]
}

// Build constructs the hierarchy for g. The greedy selection scans vertices
// in increasing vertex order, making the construction deterministic.
func Build(g *graph.Graph) (*Hierarchy, error) {
	return BuildWithOrderWorkers(g, nil, 0)
}

// ScatteredOrder returns a fixed pseudo-random permutation of 0..n-1:
// vertices sorted by a splitmix64 hash of their id. The permutation
// depends only on n, never on the graph's edges.
//
// The greedy W(r) scan is the lexicographically-first maximal
// independent set of the (r−1)-ball graph under the scan order, so a
// vertex's selection depends on earlier-ranked picks within one ball —
// recursively, on rank-decreasing chains of overlapping balls. Under
// increasing-id order those chains follow the id gradient and one edge
// mutation can phase-shift every later pick (on a ring lattice it
// reseats nearly all net points). Under a hashed order the chains have
// expected O(log n) length, so a local edge change only reseats nearby
// net points — which is what keeps incremental rebuilds delta-scoped.
// The scheme builders in internal/core scan in this order.
func ScatteredOrder(n int) []int {
	type keyed struct {
		key uint64
		v   int32
	}
	ks := make([]keyed, n)
	for v := range ks {
		// splitmix64 finalizer: a full-avalanche mix of the vertex id.
		z := uint64(v) + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		ks[v] = keyed{key: z ^ (z >> 31), v: int32(v)}
	}
	slices.SortFunc(ks, func(a, b keyed) int {
		if a.key != b.key {
			if a.key < b.key {
				return -1
			}
			return 1
		}
		return int(a.v - b.v)
	})
	order := make([]int, n)
	for i, k := range ks {
		order[i] = int(k.v)
	}
	return order
}

// BuildWorkers is Build with an explicit worker count for the parallel
// phases (≤ 0 means GOMAXPROCS). The result is identical for any count.
func BuildWorkers(g *graph.Graph, workers int) (*Hierarchy, error) {
	return BuildWithOrderWorkers(g, nil, workers)
}

// BuildWithOrder constructs the hierarchy selecting greedy candidates in the
// given vertex order (a permutation of 0..n-1). A nil order means increasing
// vertex order. Any order yields a valid hierarchy; the order only changes
// which vertices become net points.
func BuildWithOrder(g *graph.Graph, order []int) (*Hierarchy, error) {
	return BuildWithOrderWorkers(g, order, 0)
}

// BuildWithOrderWorkers is BuildWithOrder on a worker pool. The two
// expensive phases are embarrassingly parallel across levels — each greedy
// W(2^j) scan owns a private covered array, and each per-level
// nearest-net-point pass is one independent MultiSourceBFS — so they fan
// out over the pool while the greedy scan order within every level stays
// the deterministic sequential one. Schemes built with different worker
// counts are identical.
func BuildWithOrderWorkers(g *graph.Graph, order []int, workers int) (*Hierarchy, error) {
	n := g.NumVertices()
	if order != nil {
		if err := checkPermutation(order, n); err != nil {
			return nil, err
		}
	}
	numLevels := NumLevels(n)
	h := &Hierarchy{
		g:           g,
		levels:      make([][]int32, numLevels),
		wsets:       make([][]int32, numLevels),
		netLevel:    make([]int32, n),
		nearest:     make([][]int32, numLevels),
		nearestDist: make([][]int32, numLevels),
	}
	if n == 0 {
		for i := range h.levels {
			h.levels[i] = []int32{}
		}
		return h, nil
	}

	// Phase 1: the greedy W(2^j) sets. Levels are independent (each scan
	// starts from an all-uncovered state), so workers pull levels off a
	// shared counter, each with its own covered/touched/BFS state.
	runParallel(workers, numLevels, func() func(j int) {
		covered := make([]bool, n)
		touched := make([]int32, 0, n)
		scratch := graph.NewBFSScratch(n)
		return func(j int) {
			r := int32(1) << uint(j) // W(2^j): greedy with radius 2^j
			w := []int32{}
			for k := 0; k < n; k++ {
				v := k
				if order != nil {
					v = order[k]
				}
				if covered[v] {
					continue
				}
				w = append(w, int32(v))
				// Mark every u with d_G(u,v) < r as covered, i.e. explore
				// radius r-1.
				scratch.TruncatedBFS(g, v, r-1, func(u, _ int32) {
					if !covered[u] {
						covered[u] = true
						touched = append(touched, u)
					}
				})
			}
			h.wsets[j] = w
			for _, u := range touched {
				covered[u] = false
			}
			touched = touched[:0]
		}
	})

	// netLevel[v] = max j with v ∈ W(2^j) for some j ≥ i … since
	// N_i = ⋃_{j≥i} W(2^j), v ∈ N_i iff max{j : v ∈ W(2^j)} ≥ i.
	for j := 0; j < numLevels; j++ {
		for _, v := range h.wsets[j] {
			if int32(j) > h.netLevel[v] {
				h.netLevel[v] = int32(j)
			}
		}
	}
	h.computeLevels(workers)
	return h, nil
}

// computeLevels fills levels, nearest and nearestDist from netLevel. The
// per-level nearest-net-point passes (phase 2) run on the worker pool:
// each is one MultiSourceBFS writing only its own level's slots.
func (h *Hierarchy) computeLevels(workers int) {
	n := h.g.NumVertices()
	for i := range h.levels {
		var members []int32
		for v := 0; v < n; v++ {
			if h.netLevel[v] >= int32(i) {
				members = append(members, int32(v))
			}
		}
		h.levels[i] = members
	}
	runParallel(workers, len(h.levels), func() func(i int) {
		return func(i int) {
			members := h.levels[i]
			sources := make([]int, len(members))
			for k, v := range members {
				sources[k] = int(v)
			}
			dist, nearest := h.g.MultiSourceBFS(sources)
			h.nearest[i] = nearest
			h.nearestDist[i] = dist
		}
	})
}

// runParallel executes do(0..tasks-1) on a pool of workers, each worker
// first materializing its private state via newWorker. workers ≤ 0 means
// GOMAXPROCS; a single worker (or a single task) runs inline with no
// goroutine traffic.
func runParallel(workers, tasks int, newWorker func() func(task int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		do := newWorker()
		for t := 0; t < tasks; t++ {
			do(t)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			do := newWorker()
			for {
				t := int(next.Add(1)) - 1
				if t >= tasks {
					return
				}
				do(t)
			}
		}()
	}
	wg.Wait()
}

// FromNetLevels reconstructs a hierarchy from the per-vertex membership
// function netLevel[v] = max{i : v ∈ N_i} (as produced by NetLevelOf) —
// used when loading a persisted scheme. The nearest-net-point maps are
// recomputed; the greedy W-set decomposition is not recoverable, so the
// restored hierarchy has empty WSets (VerifyInvariants' separation check
// vacuously passes on them).
func FromNetLevels(g *graph.Graph, netLevel []int) (*Hierarchy, error) {
	n := g.NumVertices()
	if len(netLevel) != n {
		return nil, fmt.Errorf("nets: netLevel has %d entries, want %d", len(netLevel), n)
	}
	numLevels := NumLevels(n)
	h := &Hierarchy{
		g:           g,
		levels:      make([][]int32, numLevels),
		wsets:       make([][]int32, numLevels),
		netLevel:    make([]int32, n),
		nearest:     make([][]int32, numLevels),
		nearestDist: make([][]int32, numLevels),
	}
	for v, lvl := range netLevel {
		if lvl < 0 || lvl >= numLevels {
			return nil, fmt.Errorf("nets: netLevel[%d] = %d out of [0,%d)", v, lvl, numLevels)
		}
		h.netLevel[v] = int32(lvl)
	}
	h.computeLevels(0)
	return h, nil
}

// VerifyInvariants checks the structural properties the scheme relies on:
//
//  1. N_i is a (2^i − 1)-dominating set (every vertex has a net point within
//     2^i − 1 in its component);
//  2. N_i ⊆ N_{i−1};
//  3. W(2^j) is 2^j-separated (pairwise distances ≥ 2^j);
//  4. N_0 = V.
//
// The separation check explores only a truncated ball of radius 2^j − 1
// around each W-set point (a violating pair is by definition within that
// radius), so the check costs the same as rebuilding the W-sets rather
// than n full BFS passes — usable on the larger test graphs.
func (h *Hierarchy) VerifyInvariants() error {
	n := h.g.NumVertices()
	if n == 0 {
		return nil
	}
	if got := len(h.levels[0]); got != n {
		return fmt.Errorf("nets: |N_0| = %d, want n = %d", got, n)
	}
	for i := 0; i <= h.MaxLevel(); i++ {
		bound := int32(1)<<uint(i) - 1
		for v := 0; v < n; v++ {
			_, d := h.Nearest(i, v)
			if !graph.Reachable(d) {
				return fmt.Errorf("nets: vertex %d has no net point at level %d", v, i)
			}
			if d > bound {
				return fmt.Errorf("nets: vertex %d at distance %d > %d from N_%d", v, d, bound, i)
			}
		}
		if i > 0 {
			for _, v := range h.levels[i] {
				if !h.InNet(int(v), i-1) {
					return fmt.Errorf("nets: %d ∈ N_%d but ∉ N_%d", v, i, i-1)
				}
			}
		}
	}
	scratch := graph.NewBFSScratch(n)
	inW := make([]bool, n)
	for j := 0; j <= h.MaxLevel(); j++ {
		sep := int32(1) << uint(j)
		for _, v := range h.wsets[j] {
			inW[v] = true
		}
		var sepErr error
		for _, v := range h.wsets[j] {
			// d(v,u) < sep ⇔ u is inside the truncated ball of radius
			// sep−1, so exploring that ball sees every violating pair.
			scratch.TruncatedBFS(h.g, int(v), sep-1, func(u, d int32) {
				if u != v && inW[u] && sepErr == nil {
					sepErr = fmt.Errorf("nets: W(2^%d) points %d,%d at distance %d < %d",
						j, v, u, d, sep)
				}
			})
			if sepErr != nil {
				return sepErr
			}
		}
		for _, v := range h.wsets[j] {
			inW[v] = false
		}
	}
	return nil
}

func checkPermutation(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("nets: order has %d entries, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return fmt.Errorf("nets: order is not a permutation of 0..%d", n-1)
		}
		seen[v] = true
	}
	return nil
}
