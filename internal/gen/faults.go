package gen

import (
	"fmt"
	"math/rand"

	"fsdl/internal/graph"
)

// Fault-set generators: the adversarial and stochastic failure models the
// experiments sweep. All generators avoid the protected vertices (usually
// the query endpoints).

// RandomVertexFaults draws k distinct failed vertices uniformly, avoiding
// the protected set.
func RandomVertexFaults(g *graph.Graph, k int, protected []int, rng *rand.Rand) *graph.FaultSet {
	n := g.NumVertices()
	avoid := toSet(protected)
	f := graph.NewFaultSet()
	for f.NumVertices() < k && f.NumVertices() < n-len(avoid) {
		v := rng.Intn(n)
		if !avoid[v] {
			f.AddVertex(v)
		}
	}
	return f
}

// ClusteredFaults fails the k vertices nearest to a random center — the
// "regional outage" model (a data-center fire, a flooded neighborhood).
func ClusteredFaults(g *graph.Graph, k int, protected []int, rng *rand.Rand) *graph.FaultSet {
	n := g.NumVertices()
	avoid := toSet(protected)
	f := graph.NewFaultSet()
	if n == 0 || k <= 0 {
		return f
	}
	center := rng.Intn(n)
	graph.NewBFSScratch(n).TruncatedBFS(g, center, int32(n), func(v, _ int32) {
		if f.NumVertices() < k && !avoid[int(v)] {
			f.AddVertex(int(v))
		}
	})
	return f
}

// CutFaults targets articulation points — the adversarial model that
// disconnects queries with the fewest failures. It fails up to k cut
// vertices (uniformly among them); if the graph has none, it falls back to
// random faults.
func CutFaults(g *graph.Graph, k int, protected []int, rng *rand.Rand) *graph.FaultSet {
	avoid := toSet(protected)
	var candidates []int
	for _, v := range g.ArticulationPoints() {
		if !avoid[v] {
			candidates = append(candidates, v)
		}
	}
	if len(candidates) == 0 {
		return RandomVertexFaults(g, k, protected, rng)
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if k > len(candidates) {
		k = len(candidates)
	}
	return graph.FaultVertices(candidates[:k]...)
}

// BridgeFaults fails up to k bridge edges — the edge-fault analogue of
// CutFaults. Falls back to random edge faults when the graph has no
// bridges.
func BridgeFaults(g *graph.Graph, k int, rng *rand.Rand) *graph.FaultSet {
	bridges := g.Bridges()
	f := graph.NewFaultSet()
	if len(bridges) == 0 {
		return RandomEdgeFaults(g, k, rng)
	}
	rng.Shuffle(len(bridges), func(i, j int) { bridges[i], bridges[j] = bridges[j], bridges[i] })
	if k > len(bridges) {
		k = len(bridges)
	}
	for _, e := range bridges[:k] {
		f.AddEdge(e[0], e[1])
	}
	return f
}

// RandomEdgeFaults fails k distinct uniform random edges.
func RandomEdgeFaults(g *graph.Graph, k int, rng *rand.Rand) *graph.FaultSet {
	var edges [][2]int
	g.ForEachEdge(func(u, v int) { edges = append(edges, [2]int{u, v}) })
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	if k > len(edges) {
		k = len(edges)
	}
	f := graph.NewFaultSet()
	for _, e := range edges[:k] {
		f.AddEdge(e[0], e[1])
	}
	return f
}

// WallFaults fails a column of a w×h grid, leaving gapRows rows open —
// the forced-detour workload. Vertex (x,y) must have index y*w+x.
func WallFaults(w, h, column int, gapRows []int, protected []int) (*graph.FaultSet, error) {
	if column < 0 || column >= w {
		return nil, fmt.Errorf("gen: wall column %d out of [0,%d)", column, w)
	}
	gaps := toSet(gapRows)
	avoid := toSet(protected)
	f := graph.NewFaultSet()
	for y := 0; y < h; y++ {
		v := y*w + column
		if !gaps[y] && !avoid[v] {
			f.AddVertex(v)
		}
	}
	return f, nil
}

// MixedFaults combines kv random vertex faults with ke random edge faults.
func MixedFaults(g *graph.Graph, kv, ke int, protected []int, rng *rand.Rand) *graph.FaultSet {
	f := RandomVertexFaults(g, kv, protected, rng)
	for _, e := range RandomEdgeFaults(g, ke, rng).Edges() {
		f.AddEdge(e[0], e[1])
	}
	return f
}

func toSet(vs []int) map[int]bool {
	m := make(map[int]bool, len(vs))
	for _, v := range vs {
		m[v] = true
	}
	return m
}
