package gen

import (
	"math/rand"
	"testing"

	"fsdl/internal/graph"
)

func TestPath(t *testing.T) {
	g := Path(10)
	if g.NumVertices() != 10 || g.NumEdges() != 9 {
		t.Fatalf("path size = (%d,%d), want (10,9)", g.NumVertices(), g.NumEdges())
	}
	if g.Diameter() != 9 {
		t.Errorf("path diameter = %d, want 9", g.Diameter())
	}
}

func TestCycle(t *testing.T) {
	g, err := Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 8 {
		t.Errorf("cycle edges = %d, want 8", g.NumEdges())
	}
	for v := 0; v < 8; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if g.Diameter() != 4 {
		t.Errorf("C8 diameter = %d, want 4", g.Diameter())
	}
	if _, err := Cycle(2); err == nil {
		t.Error("Cycle(2) should fail")
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(5, 4)
	if g.NumVertices() != 20 {
		t.Fatalf("n = %d, want 20", g.NumVertices())
	}
	// Edges: 4*4 horizontal rows *4? horizontal: (5-1)*4 = 16, vertical: 5*(4-1) = 15.
	if g.NumEdges() != 31 {
		t.Errorf("m = %d, want 31", g.NumEdges())
	}
	// Manhattan distances.
	if d := g.Dist(0, 19); d != 4+3 {
		t.Errorf("corner distance = %d, want 7", d)
	}
}

func TestGrid3D(t *testing.T) {
	g, err := Grid([]int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 27 {
		t.Fatalf("n = %d, want 27", g.NumVertices())
	}
	// m = 3 * (2*3*3) = 54 edges.
	if g.NumEdges() != 54 {
		t.Errorf("m = %d, want 54", g.NumEdges())
	}
	if d := g.Dist(0, 26); d != 6 {
		t.Errorf("main diagonal distance = %d, want 6", d)
	}
	if _, err := Grid([]int{3, 0}); err == nil {
		t.Error("zero dimension should fail")
	}
}

func TestTorus2D(t *testing.T) {
	g, err := Torus2D(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 72 {
		t.Errorf("m = %d, want 72", g.NumEdges())
	}
	for v := 0; v < 36; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	// Wraparound: (0,0) to (5,0) is 1 step.
	if d := g.Dist(0, 5); d != 1 {
		t.Errorf("wrap distance = %d, want 1", d)
	}
	if _, err := Torus2D(2, 5); err == nil {
		t.Error("small torus should fail")
	}
}

func TestRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomTree(50, rng)
	if g.NumEdges() != 49 {
		t.Errorf("tree edges = %d, want 49", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("tree must be connected")
	}
}

func TestBalancedBinaryTree(t *testing.T) {
	g, err := BalancedBinaryTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 15 || g.NumEdges() != 14 {
		t.Fatalf("size = (%d,%d), want (15,14)", g.NumVertices(), g.NumEdges())
	}
	if d := g.Dist(7, 14); d != 6 {
		t.Errorf("leaf-to-leaf = %d, want 6", d)
	}
	if _, err := BalancedBinaryTree(0); err == nil {
		t.Error("zero levels should fail")
	}
}

func TestRandomGeometricConnectedAndGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, pts, err := RandomGeometric(300, 0.08, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 300 || g.NumVertices() != 300 {
		t.Fatalf("n mismatch")
	}
	if !g.IsConnected() {
		t.Error("stitched RGG must be connected")
	}
	// Every non-stitch edge joins points within the radius. Stitch edges
	// are rare; verify at least 95% satisfy the radius bound.
	within, total := 0, 0
	g.ForEachEdge(func(u, v int) {
		total++
		if dist2(pts[u], pts[v]) <= 0.08*0.08+1e-12 {
			within++
		}
	})
	if total == 0 {
		t.Fatal("rgg has no edges")
	}
	if float64(within) < 0.95*float64(total) {
		t.Errorf("only %d/%d edges within radius", within, total)
	}
}

func TestRandomGeometricRejectsBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, _, err := RandomGeometric(0, 0.1, rng); err == nil {
		t.Error("n=0 should fail")
	}
	if _, _, err := RandomGeometric(10, 0, rng); err == nil {
		t.Error("radius=0 should fail")
	}
}

func TestRoadNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := RoadNetwork(12, 12, 0.15, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("road network must be connected")
	}
	grid := Grid2D(12, 12)
	if g.NumEdges() >= grid.NumEdges()+10 {
		t.Errorf("road network has %d edges, too many vs grid %d + 10 shortcuts",
			g.NumEdges(), grid.NumEdges())
	}
	if _, err := RoadNetwork(1, 5, 0.1, 0, rng); err == nil {
		t.Error("degenerate road network should fail")
	}
	if _, err := RoadNetwork(5, 5, 1.0, 0, rng); err == nil {
		t.Error("removeFrac=1 should fail")
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := ErdosRenyi(30, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 100 {
		t.Errorf("m = %d, want 100", g.NumEdges())
	}
	if _, err := ErdosRenyi(5, 11, rng); err == nil {
		t.Error("m > max should fail")
	}
}

func TestConnectedErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := ConnectedErdosRenyi(40, 80, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("must be connected")
	}
	if g.NumEdges() != 80 {
		t.Errorf("m = %d, want 80", g.NumEdges())
	}
	if _, err := ConnectedErdosRenyi(10, 5, rng); err == nil {
		t.Error("m < n-1 should fail")
	}
}

func TestGeneratorsProduceSimpleGraphs(t *testing.T) {
	// The builder rejects duplicates/self-loops, so a successful build is
	// already a simplicity certificate; spot-check degrees anyway.
	rng := rand.New(rand.NewSource(7))
	graphs := []*graph.Graph{
		Path(20),
		Grid2D(6, 6),
		RandomTree(25, rng),
	}
	for gi, g := range graphs {
		for v := 0; v < g.NumVertices(); v++ {
			seen := map[int32]bool{}
			for _, w := range g.Neighbors(v) {
				if int(w) == v {
					t.Fatalf("graph %d: self loop at %d", gi, v)
				}
				if seen[w] {
					t.Fatalf("graph %d: duplicate neighbor %d of %d", gi, w, v)
				}
				seen[w] = true
			}
		}
	}
}
