package gen

import (
	"math/rand"
	"testing"

	"fsdl/internal/graph"
)

func TestRandomVertexFaults(t *testing.T) {
	g := Grid2D(6, 6)
	rng := rand.New(rand.NewSource(1))
	f := RandomVertexFaults(g, 5, []int{0, 35}, rng)
	if f.NumVertices() != 5 {
		t.Fatalf("got %d faults, want 5", f.NumVertices())
	}
	if f.HasVertex(0) || f.HasVertex(35) {
		t.Error("protected vertices must not fail")
	}
}

func TestRandomVertexFaultsCapped(t *testing.T) {
	g := Path(4)
	rng := rand.New(rand.NewSource(2))
	f := RandomVertexFaults(g, 100, []int{0}, rng)
	if f.NumVertices() != 3 {
		t.Errorf("capped faults = %d, want 3 (n - protected)", f.NumVertices())
	}
}

func TestClusteredFaultsAreClustered(t *testing.T) {
	g := Grid2D(12, 12)
	rng := rand.New(rand.NewSource(3))
	f := ClusteredFaults(g, 9, nil, rng)
	if f.NumVertices() != 9 {
		t.Fatalf("got %d faults, want 9", f.NumVertices())
	}
	// All faults fit inside a small ball: max pairwise distance of 9
	// BFS-closest vertices in a grid is small.
	vs := f.Vertices()
	maxD := int32(0)
	for _, a := range vs {
		dist := g.BFS(a)
		for _, b := range vs {
			if dist[b] > maxD {
				maxD = dist[b]
			}
		}
	}
	if maxD > 6 {
		t.Errorf("cluster diameter %d too large for 9 vertices in a grid", maxD)
	}
}

func TestCutFaultsDisconnect(t *testing.T) {
	g := Path(10)
	rng := rand.New(rand.NewSource(4))
	f := CutFaults(g, 1, []int{0, 9}, rng)
	if f.NumVertices() != 1 {
		t.Fatalf("got %d faults, want 1", f.NumVertices())
	}
	if g.ConnectedAvoiding(0, 9, f) {
		t.Error("failing a path cut vertex must disconnect the endpoints")
	}
}

func TestCutFaultsFallbackOnCycle(t *testing.T) {
	g, err := Cycle(10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	f := CutFaults(g, 2, nil, rng)
	if f.NumVertices() != 2 {
		t.Errorf("fallback should produce 2 random faults, got %d", f.NumVertices())
	}
}

func TestBridgeFaults(t *testing.T) {
	g := Path(8)
	rng := rand.New(rand.NewSource(6))
	f := BridgeFaults(g, 2, rng)
	if f.NumEdges() != 2 {
		t.Fatalf("got %d edge faults, want 2", f.NumEdges())
	}
	for _, e := range f.Edges() {
		ef := graph.NewFaultSet()
		ef.AddEdge(e[0], e[1])
		if g.ConnectedAvoiding(e[0], e[1], ef) {
			t.Errorf("edge %v is not a bridge", e)
		}
	}
}

func TestBridgeFaultsFallback(t *testing.T) {
	g, _ := Cycle(8)
	rng := rand.New(rand.NewSource(7))
	f := BridgeFaults(g, 3, rng)
	if f.NumEdges() != 3 {
		t.Errorf("fallback random edge faults = %d, want 3", f.NumEdges())
	}
}

func TestRandomEdgeFaultsDistinct(t *testing.T) {
	g := Grid2D(5, 5)
	rng := rand.New(rand.NewSource(8))
	f := RandomEdgeFaults(g, 10, rng)
	if f.NumEdges() != 10 {
		t.Fatalf("got %d, want 10", f.NumEdges())
	}
	for _, e := range f.Edges() {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("fault %v is not a graph edge", e)
		}
	}
	// Asking for more than m caps at m.
	f2 := RandomEdgeFaults(g, 10000, rng)
	if f2.NumEdges() != g.NumEdges() {
		t.Errorf("capped edge faults = %d, want %d", f2.NumEdges(), g.NumEdges())
	}
}

func TestWallFaults(t *testing.T) {
	f, err := WallFaults(9, 9, 4, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVertices() != 8 {
		t.Fatalf("wall size = %d, want 8", f.NumVertices())
	}
	g := Grid2D(9, 9)
	// With the row-0 gap the grid stays connected.
	if !g.ConnectedAvoiding(4*9+0, 4*9+8, f) {
		t.Error("gap should keep sides connected")
	}
	full, err := WallFaults(9, 9, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.ConnectedAvoiding(4*9+0, 4*9+8, full) {
		t.Error("full wall must disconnect the sides")
	}
	if _, err := WallFaults(9, 9, 9, nil, nil); err == nil {
		t.Error("out-of-range column must error")
	}
}

func TestMixedFaults(t *testing.T) {
	g := Grid2D(6, 6)
	rng := rand.New(rand.NewSource(9))
	f := MixedFaults(g, 3, 2, []int{0}, rng)
	if f.NumVertices() != 3 || f.NumEdges() != 2 {
		t.Errorf("mixed = (%d,%d), want (3,2)", f.NumVertices(), f.NumEdges())
	}
}
