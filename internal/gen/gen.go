// Package gen generates the synthetic graph families used as workloads in
// the experiments: paths, cycles, trees, d-dimensional grids and tori
// (bounded doubling dimension), random geometric graphs (the canonical
// low-doubling-dimension random family), perturbed-grid "road networks"
// (the Applications-section motivation), and Erdős–Rényi graphs (the
// high-doubling-dimension contrast).
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"fsdl/internal/graph"
)

// Path returns the n-vertex path P_n.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

// Cycle returns the n-vertex cycle C_n (n ≥ 3).
func Cycle(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: cycle needs n >= 3, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Grid2D returns the w×h grid graph (4-neighbor adjacency). Vertex (x,y)
// has index y*w + x.
func Grid2D(w, h int) *graph.Graph {
	g, err := Grid([]int{w, h})
	if err != nil {
		panic(err) // only on non-positive dims; Grid2D callers pass sizes
	}
	return g
}

// Grid returns the d-dimensional grid graph with the given side lengths:
// vertices are coordinate tuples, adjacent when they differ by exactly 1 in
// exactly one coordinate. Doubling dimension is Θ(d). Index layout is
// row-major with dims[0] fastest.
func Grid(dims []int) (*graph.Graph, error) {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("gen: grid dimension %d must be positive", d)
		}
		if n > (1<<31)/d {
			return nil, fmt.Errorf("gen: grid too large")
		}
		n *= d
	}
	b := graph.NewBuilder(n)
	stride := 1
	for _, d := range dims {
		for v := 0; v < n; v++ {
			coord := (v / stride) % d
			if coord+1 < d {
				b.AddEdge(v, v+stride)
			}
		}
		stride *= d
	}
	return b.Build()
}

// Torus2D returns the w×h torus (grid with wraparound), a vertex-transitive
// bounded-doubling-dimension family. Requires w, h ≥ 3.
func Torus2D(w, h int) (*graph.Graph, error) {
	if w < 3 || h < 3 {
		return nil, fmt.Errorf("gen: torus needs sides >= 3, got %d x %d", w, h)
	}
	b := graph.NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			b.AddEdge(id(x, y), id((x+1)%w, y))
			b.AddEdge(id(x, y), id(x, (y+1)%h))
		}
	}
	return b.Build()
}

// RandomTree returns a uniformly random labeled tree on n vertices via a
// random attachment sequence (each new vertex attaches to a uniform earlier
// vertex — a random recursive tree; cheap, connected, low diameter).
func RandomTree(n int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, rng.Intn(i))
	}
	return b.MustBuild()
}

// BalancedBinaryTree returns the complete binary tree with the given number
// of levels (level 1 = single root).
func BalancedBinaryTree(levels int) (*graph.Graph, error) {
	if levels < 1 {
		return nil, fmt.Errorf("gen: tree needs >= 1 level, got %d", levels)
	}
	n := (1 << uint(levels)) - 1
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, (i-1)/2)
	}
	return b.Build()
}

// RandomGeometric returns a random geometric graph: n points uniform in the
// unit square, edges between pairs at Euclidean distance ≤ radius. Isolated
// clusters are stitched to the nearest cluster so the result is connected
// (keeping the doubling dimension low). The point coordinates are returned
// for visual debugging and road-network-style workloads.
func RandomGeometric(n int, radius float64, rng *rand.Rand) (*graph.Graph, [][2]float64, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("gen: rgg needs n > 0, got %d", n)
	}
	if radius <= 0 {
		return nil, nil, fmt.Errorf("gen: rgg needs radius > 0, got %g", radius)
	}
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	// Grid-bucket the points so edge generation is O(n · pts-per-cell).
	cell := radius
	buckets := make(map[[2]int][]int)
	for i, p := range pts {
		key := [2]int{int(p[0] / cell), int(p[1] / cell)}
		buckets[key] = append(buckets[key], i)
	}
	b := graph.NewBuilder(n)
	added := make(map[uint64]bool)
	addEdge := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		k := uint64(u)<<32 | uint64(v)
		if u == v || added[k] {
			return
		}
		added[k] = true
		b.AddEdge(u, v)
	}
	r2 := radius * radius
	for key, members := range buckets {
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				other := buckets[[2]int{key[0] + dx, key[1] + dy}]
				for _, i := range members {
					for _, j := range other {
						if i < j && dist2(pts[i], pts[j]) <= r2 {
							addEdge(i, j)
						}
					}
				}
			}
		}
	}
	// Stitch components: connect each non-primary component to the
	// geometrically nearest vertex of the primary one.
	g0 := mustBuildStitched(b, pts)
	return g0, pts, nil
}

// mustBuildStitched finalizes the RGG builder, stitching components by
// nearest point pairs until connected. It rebuilds the graph at most
// #components times; RGGs at sensible radii have few components.
func mustBuildStitched(b *graph.Builder, pts [][2]float64) *graph.Graph {
	g := b.MustBuild()
	for {
		comp, k := g.Components()
		if k <= 1 {
			return g
		}
		// Find the closest pair across the two largest components — simply
		// pick: nearest pair (u,v) with comp[u]=0, comp[v]!=0.
		bestU, bestV, bestD := -1, -1, math.Inf(1)
		for u := range pts {
			if comp[u] != 0 {
				continue
			}
			for v := range pts {
				if comp[v] == 0 {
					continue
				}
				if d := dist2(pts[u], pts[v]); d < bestD {
					bestD, bestU, bestV = d, u, v
				}
			}
		}
		nb := graph.NewBuilder(len(pts))
		g.ForEachEdge(func(u, v int) { nb.AddEdge(u, v) })
		nb.AddEdge(bestU, bestV)
		g = nb.MustBuild()
	}
}

// RoadNetwork returns a perturbed w×h grid meant to mimic a road network:
// each grid edge is kept with probability keep (default candidates removed
// only when both endpoints stay connected is NOT checked here; instead we
// delete random non-bridge edges), and a few diagonal shortcut edges are
// added. The result is connected and has low doubling dimension.
func RoadNetwork(w, h int, removeFrac float64, shortcuts int, rng *rand.Rand) (*graph.Graph, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("gen: road network needs w,h >= 2, got %d x %d", w, h)
	}
	if removeFrac < 0 || removeFrac >= 1 {
		return nil, fmt.Errorf("gen: removeFrac %g out of [0,1)", removeFrac)
	}
	g := Grid2D(w, h)
	var edges [][2]int
	g.ForEachEdge(func(u, v int) { edges = append(edges, [2]int{u, v}) })
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	toRemove := int(removeFrac * float64(len(edges)))
	removed := make(map[[2]int]bool)
	for _, e := range edges {
		if toRemove == 0 {
			break
		}
		// Tentatively remove e; keep removal only if still connected.
		removed[e] = true
		if roadConnected(g, removed) {
			toRemove--
		} else {
			delete(removed, e)
		}
	}
	nb := graph.NewBuilder(w * h)
	g.ForEachEdge(func(u, v int) {
		if !removed[[2]int{u, v}] {
			nb.AddEdge(u, v)
		}
	})
	id := func(x, y int) int { return y*w + x }
	dupe := make(map[[2]int]bool)
	g.ForEachEdge(func(u, v int) {
		if !removed[[2]int{u, v}] {
			dupe[[2]int{u, v}] = true
		}
	})
	for s := 0; s < shortcuts; s++ {
		x, y := rng.Intn(w-1), rng.Intn(h-1)
		u, v := id(x, y), id(x+1, y+1)
		if u > v {
			u, v = v, u
		}
		if !dupe[[2]int{u, v}] {
			dupe[[2]int{u, v}] = true
			nb.AddEdge(u, v)
		}
	}
	return nb.Build()
}

func roadConnected(g *graph.Graph, removed map[[2]int]bool) bool {
	f := graph.NewFaultSet()
	for e := range removed {
		f.AddEdge(e[0], e[1])
	}
	d := g.BFSAvoiding(0, f)
	for _, dd := range d {
		if !graph.Reachable(dd) {
			return false
		}
	}
	return true
}

// ErdosRenyi returns G(n, m): n vertices and m uniform random edges (no
// duplicates). High doubling dimension with high probability — used as the
// contrast family in the experiments.
func ErdosRenyi(n, m int, rng *rand.Rand) (*graph.Graph, error) {
	maxM := n * (n - 1) / 2
	if m < 0 || m > maxM {
		return nil, fmt.Errorf("gen: m = %d out of [0, %d]", m, maxM)
	}
	b := graph.NewBuilder(n)
	added := make(map[uint64]bool, m)
	for len(added) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := uint64(u)<<32 | uint64(v)
		if added[k] {
			continue
		}
		added[k] = true
		b.AddEdge(u, v)
	}
	return b.Build()
}

// ConnectedErdosRenyi returns a connected n-vertex graph with ~m edges: a
// random spanning tree plus random extra edges.
func ConnectedErdosRenyi(n, m int, rng *rand.Rand) (*graph.Graph, error) {
	if m < n-1 {
		return nil, fmt.Errorf("gen: connected graph needs m >= n-1 (%d < %d)", m, n-1)
	}
	b := graph.NewBuilder(n)
	added := make(map[uint64]bool, m)
	add := func(u, v int) bool {
		if u > v {
			u, v = v, u
		}
		k := uint64(u)<<32 | uint64(v)
		if u == v || added[k] {
			return false
		}
		added[k] = true
		b.AddEdge(u, v)
		return true
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		add(perm[i], perm[rng.Intn(i)])
	}
	for len(added) < m {
		if !add(rng.Intn(n), rng.Intn(n)) && len(added) >= n*(n-1)/2 {
			break
		}
	}
	return b.Build()
}

func dist2(a, b [2]float64) float64 {
	dx, dy := a[0]-b[0], a[1]-b[1]
	return dx*dx + dy*dy
}
