// Package hub implements exact 2-hop (hub) labels via pruned landmark
// labeling — the practical failure-free distance-labeling method the
// paper's Applications section cites ("hub labels... currently the fastest
// way to compute distances on content-scale road networks") and hopes to
// extend with forbidden sets. It serves as the practical baseline in the
// experiments: exact and tiny, but with zero fault tolerance.
//
// Construction (Akiba–Iwata–Yoshida pruned landmark labeling): process
// vertices in decreasing-degree order; from each, run a BFS that prunes at
// any vertex whose distance is already covered by previously assigned
// hubs. Every vertex ends with a list of (hub, distance) pairs such that
// every pair (u,v) shares a hub on a shortest u–v path.
package hub

import (
	"cmp"
	"slices"

	"fsdl/internal/bitio"
	"fsdl/internal/graph"
)

// Labeling is a complete exact 2-hop labeling of one graph.
type Labeling struct {
	// labels[v] lists v's hubs in increasing processing rank with exact
	// distances.
	labels [][]Entry
	// rankOf[v] is v's position in the processing order.
	rankOf []int32
}

// Entry is one hub of a vertex: the hub's processing rank and the exact
// distance to it.
type Entry struct {
	Rank int32
	D    int32
}

// Build computes the pruned landmark labeling of g.
func Build(g *graph.Graph) *Labeling {
	n := g.NumVertices()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Decreasing degree, ties broken by a deterministic pseudo-random
	// hash. The random tie-break matters: on regular graphs (paths,
	// grids) every vertex ties on degree, and breaking ties by id is
	// pathological (labels grow linearly on a path); random ranks give
	// the expected O(log n) prefix-minima structure.
	slices.SortFunc(order, func(a, b int) int {
		if da, db := g.Degree(a), g.Degree(b); da != db {
			return cmp.Compare(db, da)
		}
		if ha, hb := mix64(uint64(a)), mix64(uint64(b)); ha != hb {
			return cmp.Compare(ha, hb)
		}
		return cmp.Compare(a, b)
	})
	l := &Labeling{labels: make([][]Entry, n), rankOf: make([]int32, n)}
	for rank, v := range order {
		l.rankOf[v] = int32(rank)
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = graph.Infinity
	}
	var queue []int32
	var touched []int32
	for rank, root := range order {
		queue = queue[:0]
		touched = touched[:0]
		dist[root] = 0
		queue = append(queue, int32(root))
		touched = append(touched, int32(root))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			du := dist[u]
			// Prune: if existing hubs already certify d(root,u) ≤ du,
			// adding (root,du) to u is redundant, and so is everything
			// behind u.
			if cur, ok := l.dist(root, int(u)); ok && cur <= du {
				continue
			}
			l.labels[u] = append(l.labels[u], Entry{Rank: int32(rank), D: du})
			for _, w := range g.Neighbors(int(u)) {
				if dist[w] == graph.Infinity {
					dist[w] = du + 1
					queue = append(queue, w)
					touched = append(touched, w)
				}
			}
		}
		for _, u := range touched {
			dist[u] = graph.Infinity
		}
	}
	return l
}

// dist is the label-only distance query used both by the pruning and by
// Dist: the minimum of dS+dT over shared hubs (labels are rank-sorted, so
// a linear merge suffices).
func (l *Labeling) dist(u, v int) (int32, bool) {
	lu, lv := l.labels[u], l.labels[v]
	best := int32(-1)
	i, j := 0, 0
	for i < len(lu) && j < len(lv) {
		switch {
		case lu[i].Rank < lv[j].Rank:
			i++
		case lu[i].Rank > lv[j].Rank:
			j++
		default:
			if d := lu[i].D + lv[j].D; best < 0 || d < best {
				best = d
			}
			i++
			j++
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Dist returns the exact distance d_G(u,v); ok=false when disconnected.
func (l *Labeling) Dist(u, v int) (int32, bool) {
	if u == v {
		return 0, true
	}
	return l.dist(u, v)
}

// LabelBits returns the serialized size of v's hub label in bits
// (rank gaps delta-coded, distances gamma-coded — same conventions as the
// scheme labels, for a fair size comparison).
func (l *Labeling) LabelBits(v int) int {
	var w bitio.Writer
	w.WriteDelta(uint64(len(l.labels[v])))
	prev := int64(-1)
	for _, e := range l.labels[v] {
		w.WriteDelta(uint64(int64(e.Rank) - prev - 1))
		prev = int64(e.Rank)
		w.WriteGamma(uint64(e.D))
	}
	return w.Len()
}

// NumEntries returns the hub count of v's label.
func (l *Labeling) NumEntries(v int) int { return len(l.labels[v]) }

// TotalEntries returns the labeling's total hub count (the standard size
// measure in the hub-labeling literature).
func (l *Labeling) TotalEntries() int {
	total := 0
	for _, lab := range l.labels {
		total += len(lab)
	}
	return total
}

// mix64 is the splitmix64 finalizer — a deterministic pseudo-random hash
// for tie-breaking.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
