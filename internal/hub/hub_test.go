package hub

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fsdl/internal/gen"
	"fsdl/internal/graph"
)

func TestExactOnGrid(t *testing.T) {
	g := gen.Grid2D(7, 6)
	l := Build(g)
	for u := 0; u < 42; u++ {
		dist := g.BFS(u)
		for v := 0; v < 42; v++ {
			got, ok := l.Dist(u, v)
			if !ok || got != dist[v] {
				t.Fatalf("Dist(%d,%d) = (%d,%v), want %d", u, v, got, ok, dist[v])
			}
		}
	}
}

func TestDisconnected(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	l := Build(g)
	if _, ok := l.Dist(0, 3); ok {
		t.Error("cross-component hub query must fail")
	}
	if d, ok := l.Dist(0, 1); !ok || d != 1 {
		t.Errorf("Dist(0,1) = (%d,%v)", d, ok)
	}
	if d, ok := l.Dist(4, 4); !ok || d != 0 {
		t.Errorf("isolated self distance = (%d,%v)", d, ok)
	}
}

// Property: exactness on random connected graphs.
func TestExactnessProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		g, err := gen.ConnectedErdosRenyi(n, n-1+rng.Intn(n), rng)
		if err != nil {
			return false
		}
		l := Build(g)
		for trial := 0; trial < 15; trial++ {
			u, v := rng.Intn(n), rng.Intn(n)
			want := g.Dist(u, v)
			got, ok := l.Dist(u, v)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Pruning must keep labels far below the trivial n entries on structured
// graphs.
func TestPruningEffective(t *testing.T) {
	g := gen.Grid2D(12, 12)
	l := Build(g)
	n := g.NumVertices()
	avg := float64(l.TotalEntries()) / float64(n)
	if avg > float64(n)/4 {
		t.Errorf("average hub count %.1f — pruning ineffective (n=%d)", avg, n)
	}
	for v := 0; v < n; v++ {
		if l.NumEntries(v) == 0 {
			t.Fatalf("vertex %d has no hubs", v)
		}
	}
}

func TestLabelBitsPositiveAndOrdered(t *testing.T) {
	g := gen.Path(50)
	l := Build(g)
	for v := 0; v < 50; v += 7 {
		if l.LabelBits(v) <= 0 {
			t.Fatalf("LabelBits(%d) = %d", v, l.LabelBits(v))
		}
		lab := l.labels[v]
		for i := 1; i < len(lab); i++ {
			if lab[i-1].Rank >= lab[i].Rank {
				t.Fatalf("label of %d not rank-sorted", v)
			}
		}
	}
}

func TestHubLabelsSmallOnPath(t *testing.T) {
	// Paths: PLL gives O(log n) hubs per vertex.
	g := gen.Path(256)
	l := Build(g)
	maxHubs := 0
	for v := 0; v < 256; v++ {
		if h := l.NumEntries(v); h > maxHubs {
			maxHubs = h
		}
	}
	if maxHubs > 24 { // ~ 2 log2(256) + slack
		t.Errorf("max hubs on P_256 = %d, expected logarithmic", maxHubs)
	}
}
