package fsdl_test

import (
	"bytes"
	"testing"

	"fsdl"
)

// FuzzDecodeRouteHeader throws arbitrary bytes at the public route-header
// decoder. The decoder is the one piece of the facade that parses data
// straight off the wire (packet headers), so it must never panic, never
// over-allocate from an attacker-chosen length field, and must round-trip
// everything it accepts.
func FuzzDecodeRouteHeader(f *testing.F) {
	// A real header from the routing scheme.
	g := fsdl.GridGraph2D(5, 5)
	s, err := fsdl.Build(g, 1)
	if err != nil {
		f.Fatal(err)
	}
	r := fsdl.BuildRouting(s)
	if h, ok := r.HeaderFor(0, 24, fsdl.FaultVertices(12)); ok {
		buf, nbits := h.Encode()
		f.Add(buf, nbits)
	}
	// A header carrying a policy blob.
	hp := &fsdl.RouteHeader{Waypoints: []int32{0, 7, 24}, PolicyBits: []byte("deny:12")}
	buf, nbits := hp.Encode()
	f.Add(buf, nbits)
	// Degenerate and adversarial seeds.
	f.Add([]byte{}, 0)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, 48)
	f.Add([]byte{0x00}, 8)
	f.Add(buf[:len(buf)/2], nbits/2)

	f.Fuzz(func(t *testing.T, data []byte, nbits int) {
		if nbits < 0 || nbits > len(data)*8 {
			return
		}
		h, err := fsdl.DecodeRouteHeader(data, nbits)
		if err != nil {
			return
		}
		// A length field must never allocate past the input: there are at
		// most nbits bits of payload, so nothing decoded can exceed it.
		if len(h.Waypoints) > nbits || len(h.PolicyBits)*8 > nbits {
			t.Fatalf("decoded sizes exceed input: %d waypoints, %d policy bytes from %d bits",
				len(h.Waypoints), len(h.PolicyBits), nbits)
		}
		// Accepted headers must round-trip exactly.
		buf2, nbits2 := h.Encode()
		h2, err := fsdl.DecodeRouteHeader(buf2, nbits2)
		if err != nil {
			t.Fatalf("re-decode of accepted header failed: %v", err)
		}
		buf3, nbits3 := h2.Encode()
		if nbits2 != nbits3 || !bytes.Equal(buf2, buf3) {
			t.Fatalf("header does not round-trip: %d/%d bits", nbits2, nbits3)
		}
	})
}
