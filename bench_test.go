package fsdl_test

// One testing.B benchmark per experiment of DESIGN.md / EXPERIMENTS.md.
// Custom metrics (label-bits, stretch, sketch sizes) are attached via
// b.ReportMetric so `go test -bench . -benchmem` regenerates the numbers
// the experiment reports record. The full sweeps with tables live in
// cmd/fsdl-bench; these benches are the per-configuration measurement
// kernels.

import (
	"fmt"
	"math/rand"
	"testing"

	"fsdl"
	"fsdl/internal/baseline"
	"fsdl/internal/core"
	"fsdl/internal/hub"
	"fsdl/internal/lowerbound"
	"fsdl/internal/oracle"
	"fsdl/internal/treelabel"
)

func mustScheme(b *testing.B, g *fsdl.Graph, eps float64) *fsdl.Scheme {
	b.Helper()
	s, err := fsdl.Build(g, eps)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkBuildScheme measures preprocessing (net hierarchy + level
// store) on a 24x24 grid.
func BenchmarkBuildScheme(b *testing.B) {
	g := fsdl.GridGraph2D(24, 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fsdl.Build(g, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildSchemeParallel measures the worker-pool preprocessing
// pipeline on a large grid (the per-level greedy passes and the global
// (level, net-point) BFS queue both scale with workers; output is
// bit-identical for any count — see TestParallelBuildDeterminism).
func BenchmarkBuildSchemeParallel(b *testing.B) {
	g := fsdl.GridGraph2D(64, 64)
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fsdl.BuildWithWorkers(g, 2, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLabelLengthVsN is the E1 kernel: label extraction + encoding at
// growing n; the label-bits metric is the experiment's measurement.
func BenchmarkLabelLengthVsN(b *testing.B) {
	for _, side := range []int{8, 16, 32} {
		side := side
		b.Run(fmt.Sprintf("grid-%dx%d", side, side), func(b *testing.B) {
			g := fsdl.GridGraph2D(side, side)
			s := mustScheme(b, g, 2)
			s.SetCacheLimit(0)
			v := g.NumVertices() / 2
			var bits int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, bits = s.Label(v).Encode()
			}
			b.ReportMetric(float64(bits), "label-bits")
		})
	}
}

// BenchmarkLabelLengthVsEps is the E2 kernel.
func BenchmarkLabelLengthVsEps(b *testing.B) {
	g := fsdl.GridGraph2D(16, 16)
	for _, eps := range []float64{3, 1, 0.5} { // c = 2, 3, 4
		eps := eps
		b.Run(fmt.Sprintf("eps-%g", eps), func(b *testing.B) {
			s := mustScheme(b, g, eps)
			s.SetCacheLimit(0)
			v := g.NumVertices() / 2
			var bits int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, bits = s.Label(v).Encode()
			}
			b.ReportMetric(float64(bits), "label-bits")
		})
	}
}

// BenchmarkQueryStretch is the E3 kernel: full query (fetch + decode) with
// |F| faults; the stretch metric reports estimate/truth.
func BenchmarkQueryStretch(b *testing.B) {
	g := fsdl.GridGraph2D(20, 20)
	s := mustScheme(b, g, 2)
	s.SetCacheLimit(4096)
	n := g.NumVertices()
	for _, nf := range []int{0, 4, 8} {
		nf := nf
		b.Run(fmt.Sprintf("F-%d", nf), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			var totalStretch, count float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src, dst := rng.Intn(n), rng.Intn(n)
				f := fsdl.NewFaultSet()
				for f.Size() < nf {
					v := rng.Intn(n)
					if v != src && v != dst {
						f.AddVertex(v)
					}
				}
				est, ok := s.Distance(src, dst, f)
				if !ok {
					continue
				}
				b.StopTimer()
				truth := g.DistAvoiding(src, dst, f)
				if truth > 0 {
					totalStretch += float64(est) / float64(truth)
					count++
				}
				b.StartTimer()
			}
			if count > 0 {
				b.ReportMetric(totalStretch/count, "stretch")
			}
		})
	}
}

// BenchmarkQueryTimeVsF is the E4 kernel: decode only (labels prefetched),
// the quantity Lemma 2.6 bounds.
func BenchmarkQueryTimeVsF(b *testing.B) {
	g := fsdl.GridGraph2D(24, 24)
	s := mustScheme(b, g, 2)
	s.SetCacheLimit(4096)
	n := g.NumVertices()
	for _, nf := range []int{1, 4, 16} {
		nf := nf
		b.Run(fmt.Sprintf("F-%d", nf), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			src, dst := 0, n-1
			f := fsdl.NewFaultSet()
			for f.Size() < nf {
				v := rng.Intn(n)
				if v != src && v != dst {
					f.AddVertex(v)
				}
			}
			q, err := s.NewQuery(src, dst, f)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Distance()
			}
		})
	}
}

// BenchmarkExactRecompute is E4's baseline: one BFS on G\F per query.
func BenchmarkExactRecompute(b *testing.B) {
	g := fsdl.GridGraph2D(24, 24)
	ex := baseline.Exact{G: g}
	f := fsdl.FaultVertices(100, 200, 300, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Distance(0, g.NumVertices()-1, f)
	}
}

// BenchmarkRouting is the E5 kernel: full-knowledge forbidden-set routing.
func BenchmarkRouting(b *testing.B) {
	g := fsdl.GridGraph2D(16, 16)
	s := mustScheme(b, g, 2)
	s.SetCacheLimit(4096)
	r := fsdl.BuildRouting(s)
	f := fsdl.FaultVertices(100, 120, 140)
	var length int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		route, ok := r.RouteWithFaults(0, g.NumVertices()-1, f)
		if !ok {
			b.Fatal("route failed")
		}
		length = route.Length
	}
	b.ReportMetric(float64(length), "route-hops")
}

// BenchmarkReconstruction is the E6 kernel: the Theorem 3.1 adjacency
// reconstruction attack against the labeling scheme's own oracle.
func BenchmarkReconstruction(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	member, _, err := lowerbound.RandomFamilyMember(3, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	o, err := oracle.BuildStatic(member, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lowerbound.ReconstructAdjacency(member.NumVertices(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleBuild is the E7 kernel: materializing the table-of-labels
// oracle; oracle-bits is the size metric.
func BenchmarkOracleBuild(b *testing.B) {
	g := fsdl.GridGraph2D(12, 12)
	var size int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := fsdl.BuildStaticOracle(g, 2)
		if err != nil {
			b.Fatal(err)
		}
		size = o.SizeBits()
	}
	b.ReportMetric(float64(size), "oracle-bits")
}

// BenchmarkDynamicOracleChurn is the E7 dynamic kernel: one
// fail/query/recover cycle.
func BenchmarkDynamicOracleChurn(b *testing.B) {
	g := fsdl.GridGraph2D(12, 12)
	d, err := fsdl.NewDynamicOracle(g, 2, 0)
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := 1 + rng.Intn(n-2)
		if err := d.FailVertex(v); err != nil {
			b.Fatal(err)
		}
		d.Distance(0, n-1)
		if err := d.RecoverVertex(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceQuery is the E8 kernel: a traced query around a planted
// fault cluster, reporting the sketch-graph dimensions.
func BenchmarkTraceQuery(b *testing.B) {
	g := fsdl.GridGraph2D(20, 20)
	s := mustScheme(b, g, 2)
	s.SetCacheLimit(4096)
	f := fsdl.FaultVertices(209, 210, 211)
	q, err := s.NewQuery(0, g.NumVertices()-1, f)
	if err != nil {
		b.Fatal(err)
	}
	var tr fsdl.Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.DistanceWithTrace(&tr)
	}
	b.ReportMetric(float64(tr.NumHVertices), "H-vertices")
	b.ReportMetric(float64(tr.NumHEdges), "H-edges")
}

// BenchmarkFFQuery measures the failure-free scheme of Section 2.1 — the
// cheap no-fault baseline's decode cost.
func BenchmarkFFQuery(b *testing.B) {
	g := fsdl.GridGraph2D(20, 20)
	ff, err := fsdl.BuildFailureFree(g, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	ls, lt := ff.Label(0), ff.Label(g.NumVertices()-1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fsdl.FFDistance(ls, lt)
	}
}

// BenchmarkAblatedLabel is the E9 kernel: label extraction under the
// radius-shrink ablation, with the label-bits metric showing the savings
// the completeness guarantee is traded for.
func BenchmarkAblatedLabel(b *testing.B) {
	g := fsdl.PathGraph(512)
	for _, shrink := range []int{0, 2} {
		shrink := shrink
		b.Run(fmt.Sprintf("rshrink-%d", shrink), func(b *testing.B) {
			s, err := core.BuildSchemeAblated(g, 2, shrink)
			if err != nil {
				b.Fatal(err)
			}
			s.SetCacheLimit(0)
			var bits int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, bits = s.Label(256).Encode()
			}
			b.ReportMetric(float64(bits), "label-bits")
		})
	}
}

// BenchmarkTreeLabelQuery is the E10 kernel: the exact Courcelle–Twigg-
// style tree query (the related-work comparison point).
func BenchmarkTreeLabelQuery(b *testing.B) {
	g := fsdl.PathGraph(1024)
	s, err := treelabel.Build(g)
	if err != nil {
		b.Fatal(err)
	}
	lu, lv := s.Label(100), s.Label(900)
	faults := []*treelabel.Label{s.Label(500)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		treelabel.Query(lu, lv, faults, nil)
	}
}

// BenchmarkDistsimTrace is the E11 kernel: one full discrete-event
// simulation run (failures + packet convoy + flooding).
func BenchmarkDistsimTrace(b *testing.B) {
	g := fsdl.GridGraph2D(10, 10)
	cs, err := fsdl.Build(g, 2)
	if err != nil {
		b.Fatal(err)
	}
	cs.SetCacheLimit(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := fsdl.NewNetworkSimulator(cs, fsdl.SimConfig{})
		for y := 0; y < 9; y++ {
			sim.FailVertexAt(0, y*10+5)
		}
		for p := 0; p < 10; p++ {
			sim.InjectPacketAt(int64(1+p*5), 4*10, 4*10+9)
		}
		sim.Run(1 << 30)
	}
}

// BenchmarkBidirVsUnidirBFS quantifies the bidirectional baseline speedup.
func BenchmarkBidirVsUnidirBFS(b *testing.B) {
	g := fsdl.GridGraph2D(64, 64)
	ex := baseline.Exact{G: g}
	f := fsdl.FaultVertices(2000, 2001)
	src, dst := 0, 64*32+32 // center: room for the frontier savings
	b.Run("unidirectional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ex.Distance(src, dst, f)
		}
	})
	b.Run("bidirectional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ex.DistanceBidir(src, dst, f)
		}
	})
}

// BenchmarkWeightedQuery is the E12 kernel: a forbidden-set query on a
// weighted road grid through the subdivision reduction.
func BenchmarkWeightedQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const side = 10
	wg := fsdl.NewWeightedGraph(side * side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				if err := wg.AddEdge(y*side+x, y*side+x+1, 1+rng.Int31n(4)); err != nil {
					b.Fatal(err)
				}
			}
			if y+1 < side {
				if err := wg.AddEdge(y*side+x, (y+1)*side+x, 1+rng.Int31n(4)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	s, err := fsdl.BuildWeighted(wg, 2)
	if err != nil {
		b.Fatal(err)
	}
	f := fsdl.FaultVertices(45, 55)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Distance(0, side*side-1, f)
	}
}

// BenchmarkHubQuery is the E13 kernel: an exact 2-hop hub-label query (the
// practical failure-free baseline).
func BenchmarkHubQuery(b *testing.B) {
	g := fsdl.GridGraph2D(20, 20)
	l := hub.Build(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Dist(0, g.NumVertices()-1)
	}
}
