// Routing policy: the paper's second application — a router that forbids
// part of the network for policy (security, economics) reasons and
// immediately routes around it, plus the failure-discovery loop where a
// packet learns about unknown failures en route and reroutes without any
// global route maintenance.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fsdl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))
	// An ISP-like topology: a connected random geometric graph (low
	// doubling dimension, like real router meshes).
	net, _, err := fsdl.RandomGeometricGraph(400, 0.08, rng)
	if err != nil {
		return err
	}
	fmt.Printf("network: %d routers, %d links\n", net.NumVertices(), net.NumEdges())

	scheme, err := fsdl.Build(net, 2)
	if err != nil {
		return err
	}
	router := fsdl.BuildRouting(scheme)

	// Route between two far-apart routers so policies and failures have
	// something to bite on.
	src := 0
	dst := src
	distFromSrc := net.BFS(src)
	for v, d := range distFromSrc {
		if d > distFromSrc[dst] {
			dst = v
		}
	}
	r, ok := router.RouteWithFaults(src, dst, nil)
	if !ok {
		return fmt.Errorf("no route %d -> %d", src, dst)
	}
	fmt.Printf("default route %d -> %d: %d hops via %d waypoints\n",
		src, dst, r.Length, len(r.Waypoints))

	// Policy: router src refuses to transit through the middle third of
	// the default path (say, a distrusted autonomous system).
	policy := fsdl.NewFaultSet()
	for i := 2 * len(r.Path) / 5; i < 3*len(r.Path)/5; i++ {
		if v := r.Path[i]; v != src && v != dst {
			policy.AddVertex(v)
		}
	}
	fmt.Printf("policy forbids %d transit routers\n", policy.Size())
	pr, ok := router.RouteWithFaults(src, dst, policy)
	if !ok {
		fmt.Println("policy makes the destination unreachable")
	} else {
		fmt.Printf("policy-compliant route: %d hops (was %d)\n", pr.Length, r.Length)
		for _, v := range pr.Path {
			if policy.HasVertex(v) {
				return fmt.Errorf("policy violated at router %d", v)
			}
		}
		fmt.Println("verified: the policy route avoids every forbidden router")
	}

	// Failure discovery: routers on the default path silently die; the
	// source does not know. The packet discovers failures on contact,
	// each discovering router updates its forbidden set and reroutes
	// immediately.
	failures := fsdl.NewFaultSet()
	for i := 2; i < len(r.Path)-1 && failures.Size() < 3; i += len(r.Path) / 4 {
		failures.AddVertex(r.Path[i])
	}
	for failures.Size() < 5 {
		v := rng.Intn(net.NumVertices())
		if v != src && v != dst {
			failures.AddVertex(v)
		}
	}
	known := fsdl.NewFaultSet()
	ar, ok := router.AdaptiveRoute(src, dst, failures, known)
	if !ok {
		fmt.Println("failures disconnected the destination")
		return nil
	}
	fmt.Printf("\n%d silent failures: packet delivered in %d hops after %d in-flight reroutes\n",
		failures.Size(), ar.Length, ar.Recomputes)
	fmt.Printf("failures discovered en route: %d of %d\n", known.Size(), failures.Size())
	return nil
}
