// Region bundle: the paper's hand-held-device scenario, end to end. A
// navigation server preprocesses the city once; a phone downloads only the
// labels of its region ("not a data structure whose size is proportional
// to the whole graph of the world, but only to the relevant region") and
// answers every local distance query offline — including under road
// closures it merely holds the labels of.
package main

import (
	"bytes"
	"fmt"
	"log"

	"fsdl"
	"fsdl/internal/labelstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Server side: the whole city.
	const side = 20
	city := fsdl.GridGraph2D(side, side)
	scheme, err := fsdl.Build(city, 2)
	if err != nil {
		return err
	}
	var whole bytes.Buffer
	if err := labelstore.Save(&whole, scheme, nil); err != nil {
		return err
	}
	fmt.Printf("server: city of %d junctions preprocessed; full label DB = %.1f KiB\n",
		city.NumVertices(), float64(whole.Len())/1024)

	// Phone side: download only the neighborhood around home.
	home := 8*side + 7
	const radius = 5
	var bundle bytes.Buffer
	if err := labelstore.SaveRegion(&bundle, scheme, home, radius); err != nil {
		return err
	}
	bundleBytes := bundle.Len()
	store, err := labelstore.Load(&bundle)
	if err != nil {
		return err
	}
	fmt.Printf("phone: downloaded region around junction %d (radius %d): %d labels, %.1f KiB (%.1f%% of the full DB)\n",
		home, radius, store.NumLabels(), float64(bundleBytes)/1024,
		100*float64(bundleBytes)/float64(whole.Len()))

	// Offline local queries.
	cafe := home + 3 + 2*side // 3 east, 2 south
	d, ok, err := store.Distance(home, cafe, nil)
	if err != nil {
		return err
	}
	fmt.Printf("offline: home -> cafe estimate %d (ok=%v)\n", d, ok)

	// A closure arrives as a push notification: just a junction id. The
	// phone already holds that junction's label — no re-download.
	closures := fsdl.FaultVertices(home+1, home+side)
	d, ok, err = store.Distance(home, cafe, closures)
	if err != nil {
		return err
	}
	fmt.Printf("offline, 2 closures: home -> cafe estimate %d (ok=%v)\n", d, ok)

	// Queries leaving the region fail loudly — time to download the next
	// bundle, exactly the granularity the paper's motivation describes.
	if _, _, err := store.Distance(home, 0, nil); err != nil {
		fmt.Printf("out-of-region query correctly refused: %v\n", err)
	}
	return nil
}
