// Road closures: the paper's motivating application — a navigation service
// over a road network where users compute driving distances locally from
// small labels, and road closures (accidents, construction) arrive as
// forbidden sets without any global recomputation.
//
// The demo builds a perturbed-grid road network, picks a commuter route,
// then closes more and more roads along it and watches the locally
// computed distance estimate track the true detour.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fsdl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))
	const side = 24
	roads, err := fsdl.RoadNetworkGraph(side, side, 0.12, 14, rng)
	if err != nil {
		return err
	}
	fmt.Printf("road network: %d junctions, %d road segments\n",
		roads.NumVertices(), roads.NumEdges())

	const eps = 2.0
	scheme, err := fsdl.Build(roads, eps)
	if err != nil {
		return err
	}

	// A commuter drives from the NW corner to the SE corner.
	home, office := 0, side*side-1
	baseline, ok := scheme.Distance(home, office, nil)
	if !ok {
		return fmt.Errorf("home and office not connected")
	}
	fmt.Printf("normal commute estimate: %d segments (true %d, guarantee ≤ %.0f)\n\n",
		baseline, roads.Dist(home, office), float64(roads.Dist(home, office))*(1+eps))

	// Close junctions along the diagonal, one by one — simulating
	// incidents appearing during the day. Each query uses only the labels
	// of (home, office, closures): no rebuild ever happens.
	closures := fsdl.NewFaultSet()
	fmt.Println("closures  est. commute  true commute  stretch")
	for k := 1; k <= 6; k++ {
		j := k * side / 7
		junction := j*side + j
		if junction == home || junction == office {
			continue
		}
		closures.AddVertex(junction)
		est, ok := scheme.Distance(home, office, closures)
		truth := roads.DistAvoiding(home, office, closures)
		if !ok {
			fmt.Printf("%8d  %12s\n", closures.Size(), "DISCONNECTED")
			continue
		}
		fmt.Printf("%8d  %12d  %12d  %.3f\n",
			closures.Size(), est, truth, float64(est)/float64(truth))
	}

	// An accident also closes a specific road segment (edge fault).
	var segment [2]int
	found := false
	roads.ForEachEdge(func(u, v int) {
		if !found && !closures.HasVertex(u) && !closures.HasVertex(v) && u != home && v != office {
			segment = [2]int{u, v}
			found = true
		}
	})
	if found {
		closures.AddEdge(segment[0], segment[1])
		est, ok := scheme.Distance(home, office, closures)
		fmt.Printf("\nplus closed segment %v: estimate %d (ok=%v)\n", segment, est, ok)
	}

	// The label a phone would download for "home".
	_, bits := scheme.Label(home).Encode()
	fmt.Printf("\nlabel the phone stores for home: %.1f KiB — independent of how many closures it must handle\n",
		float64(bits)/8192)
	return nil
}
