// Dynamic oracle: the fully dynamic (1+ε)-approximate distance oracle
// obtained from forbidden-set labels via the Abraham–Chechik–Gavoille
// (STOC 2012) transform, as discussed in the paper's Related Work. The
// demo subjects a grid to a long failure/recovery churn while serving
// distance queries, showing the periodic self-rebuilds that keep query
// cost bounded.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fsdl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const side = 16
	g := fsdl.GridGraph2D(side, side)
	n := g.NumVertices()
	oracle, err := fsdl.NewDynamicOracle(g, 2, 0) // default threshold ~ sqrt(n)
	if err != nil {
		return err
	}
	fmt.Printf("dynamic oracle over a %dx%d grid (n=%d)\n", side, side, n)

	rng := rand.New(rand.NewSource(3))
	failed := map[int]bool{}
	queries, answered := 0, 0
	for step := 1; step <= 300; step++ {
		// Random churn: fail or recover a random vertex.
		v := rng.Intn(n)
		if failed[v] {
			if err := oracle.RecoverVertex(v); err != nil {
				return err
			}
			delete(failed, v)
		} else if len(failed) < n/4 {
			if err := oracle.FailVertex(v); err != nil {
				return err
			}
			failed[v] = true
		}

		// Serve a query every step.
		s, t := rng.Intn(n), rng.Intn(n)
		queries++
		if _, ok, err := oracle.Distance(s, t); err != nil {
			return err
		} else if ok {
			answered++
		}
		if step%75 == 0 {
			fmt.Printf("step %3d: %2d failed vertices, delta |F|=%2d, rebuilds so far %d\n",
				step, len(failed), oracle.DeltaSize(), oracle.Rebuilds())
		}
	}
	fmt.Printf("\nserved %d queries (%d answered, %d hit disconnections/failed endpoints)\n",
		queries, answered, queries-answered)
	fmt.Printf("total rebuilds: %d — each resets the forbidden-set delta so queries never degrade past the threshold\n",
		oracle.Rebuilds())

	// Spot check correctness against exact recomputation right now.
	live := fsdl.NewFaultSet()
	for v := range failed {
		live.AddVertex(v)
	}
	checked, okCount := 0, 0
	for i := 0; i < 50; i++ {
		s, t := rng.Intn(n), rng.Intn(n)
		truth := g.DistAvoiding(s, t, live)
		est, ok, err := oracle.Distance(s, t)
		if err != nil {
			return err
		}
		reachable := truth >= 0
		if ok != reachable {
			return fmt.Errorf("mismatch: oracle ok=%v, truth reachable=%v", ok, reachable)
		}
		checked++
		if !ok {
			continue
		}
		if est < int64(truth) || float64(est) > 3*float64(truth) {
			return fmt.Errorf("estimate %d outside [d, 3d] for true %d", est, truth)
		}
		okCount++
	}
	fmt.Printf("final spot check: %d/%d queries verified against exact recomputation\n", okCount, checked)
	return nil
}
