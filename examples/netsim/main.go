// Network simulation: the full distributed story from the paper's
// Applications section, end to end — routers hold labels and private
// forbidden sets, failures are silent until a packet bumps into one, the
// discovering router floods an announcement and reroutes the packet from
// its own knowledge, with no global route recomputation ever.
//
// The demo compares two runs on the same failure/traffic trace: flooding
// on (knowledge propagates) vs flooding off (every packet rediscovers the
// failures), showing what the propagation protocol buys.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fsdl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const side = 12
	g := fsdl.GridGraph2D(side, side)
	n := g.NumVertices()
	scheme, err := fsdl.Build(g, 2)
	if err != nil {
		return err
	}
	scheme.SetCacheLimit(4096)
	fmt.Printf("network: %dx%d grid of routers (n=%d), stretch guarantee 1+%g\n\n",
		side, side, n, scheme.Params().Epsilon)

	trace := buildTrace(n, side)
	for _, flooding := range []bool{true, false} {
		sim := fsdl.NewNetworkSimulator(scheme, fsdl.SimConfig{DisableFlooding: !flooding})
		for _, f := range trace.failures {
			if err := sim.FailVertexAt(f.at, f.v); err != nil {
				return err
			}
		}
		for _, p := range trace.packets {
			if err := sim.InjectPacketAt(p.at, p.src, p.dst); err != nil {
				return err
			}
		}
		m := sim.Run(1 << 30)
		mode := "flooding ON "
		if !flooding {
			mode = "flooding OFF"
		}
		fmt.Printf("%s: injected %d, delivered %d, dropped %d\n", mode, m.Injected, m.Delivered, m.Dropped)
		fmt.Printf("             data hops %d, in-flight reroutes %d, control messages %d, mean stretch %.3f\n\n",
			m.DataHops, m.Reroutes, m.ControlMessages, m.MeanStretch())
	}
	fmt.Println("with flooding, later packets start with the failures already in their source's")
	fmt.Println("forbidden set and sail around them; without it, every packet pays discovery")
	fmt.Println("reroutes itself — the trade the Applications section describes.")
	return nil
}

type failure struct {
	at int64
	v  int
}

type injection struct {
	at       int64
	src, dst int
}

type traceSpec struct {
	failures []failure
	packets  []injection
}

// buildTrace plants a wall of failures early, then a steady packet flow
// crossing it.
func buildTrace(n, side int) traceSpec {
	rng := rand.New(rand.NewSource(5))
	var tr traceSpec
	for y := 1; y < side-1; y++ {
		tr.failures = append(tr.failures, failure{at: 0, v: y*side + side/2})
	}
	for i := 0; i < 40; i++ {
		src := rng.Intn(n/2/side)*side + rng.Intn(side/2)                 // west side
		dst := (side/2+rng.Intn(side/2))*side + side/2 + rng.Intn(side/2) // east side
		tr.packets = append(tr.packets, injection{at: int64(5 + i*3), src: src, dst: dst})
	}
	return tr
}
