// Quickstart: build a small graph, preprocess it into a forbidden-set
// distance labeling scheme, and answer distance queries before and after
// failures — all through the public API.
package main

import (
	"fmt"
	"log"

	"fsdl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 10x10 grid "city": vertex (x,y) has index y*10+x.
	g := fsdl.GridGraph2D(10, 10)
	fmt.Printf("graph: %d vertices, %d edges, diameter %d\n",
		g.NumVertices(), g.NumEdges(), g.Diameter())

	// Preprocess once; stretch guarantee 1+eps.
	const eps = 1.5
	scheme, err := fsdl.Build(g, eps)
	if err != nil {
		return err
	}
	p := scheme.Params()
	fmt.Printf("scheme: eps=%g, c=%d, levels %d..%d\n",
		p.Epsilon, p.C, p.LowestLevel(), p.MaxLevel)

	src, dst := 0, 99 // opposite corners, true distance 18
	d, ok := scheme.Distance(src, dst, nil)
	fmt.Printf("no failures:        d(%d,%d) ≈ %d (ok=%v, true 18, bound %.0f)\n",
		src, dst, d, ok, (1+eps)*18)

	// Three routers in the middle of the city fail.
	faults := fsdl.FaultVertices(44, 45, 54)
	d, ok = scheme.Distance(src, dst, faults)
	fmt.Printf("3 failed vertices:  d(%d,%d) ≈ %d (ok=%v)\n", src, dst, d, ok)

	// A link is cut too.
	faults.AddEdge(0, 1)
	d, ok = scheme.Distance(src, dst, faults)
	fmt.Printf("plus 1 failed edge: d(%d,%d) ≈ %d (ok=%v)\n", src, dst, d, ok)

	// Labels are plain bit strings: ship them anywhere, decode, query.
	buf, nbits := scheme.Label(src).Encode()
	fmt.Printf("label of %d: %d bits (%d bytes serialized)\n", src, nbits, len(buf))
	ls, err := fsdl.DecodeLabel(buf, nbits)
	if err != nil {
		return err
	}
	q := &fsdl.Query{S: ls, T: scheme.Label(dst)}
	d2, _ := q.Distance()
	fmt.Printf("query answered from serialized labels alone: %d\n", d2)

	// Cutting every way out of the corner is detected as disconnection.
	sealed := fsdl.FaultVertices(1, 10)
	if _, ok := scheme.Distance(src, dst, sealed); !ok {
		fmt.Println("sealed corner: correctly reported DISCONNECTED")
	}
	return nil
}
