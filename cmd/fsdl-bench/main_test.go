package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runToFile runs the bench CLI capturing output through a temp file (run
// takes *os.File for streaming).
func runToFile(t *testing.T, args ...string) (string, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(args, f)
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestBenchSingleExperiment(t *testing.T) {
	out, err := runToFile(t, "-exp", "E6", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E6: Lower bound") {
		t.Errorf("missing experiment header:\n%s", out)
	}
	if !strings.Contains(out, "exact match: true") {
		t.Errorf("missing reconstruction result:\n%s", out)
	}
}

func TestBenchLowercaseID(t *testing.T) {
	if _, err := runToFile(t, "-exp", "e6", "-quick"); err != nil {
		t.Errorf("lowercase id should work: %v", err)
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	out, err := runToFile(t, "-exp", "E99")
	if err == nil {
		t.Errorf("unknown experiment must error; output:\n%s", out)
	}
	if !strings.Contains(err.Error(), "E1") {
		t.Errorf("error should list valid ids: %v", err)
	}
}

func TestBenchBadFlag(t *testing.T) {
	if _, err := runToFile(t, "-bogus"); err == nil {
		t.Error("bad flag must error")
	}
}

func TestBenchChaosFlag(t *testing.T) {
	out, err := runToFile(t, "-chaos", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E15: Chaos resilience") {
		t.Errorf("-chaos did not run E15:\n%s", out)
	}
	if !strings.Contains(out, "byte-for-byte identical") {
		t.Errorf("chaos run not reproducible:\n%s", out)
	}
	if !strings.Contains(out, "0 safety violations") {
		t.Errorf("degraded decoding violated safety:\n%s", out)
	}
}

func TestBenchChaosConflictsWithExp(t *testing.T) {
	if _, err := runToFile(t, "-chaos", "-exp", "E6"); err == nil {
		t.Error("-chaos with a different -exp must error")
	}
}
