// Command fsdl-bench runs the reproduction experiments E1–E16 (see
// DESIGN.md and EXPERIMENTS.md) and prints their reports.
//
// Usage:
//
//	fsdl-bench [-exp E1|E2|...|all] [-quick] [-seed N] [-workers N]
//	fsdl-bench -chaos [-quick] [-seed N]   # resilience scenario (alias for -exp E15)
//	fsdl-bench -json PATH [-quick] [-baseline OLD.json] [-compare OLD.json]  # machine-readable perf baseline (see docs/PERFORMANCE.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"fsdl/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fsdl-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("fsdl-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run (E1..E16, or 'all')")
	quick := fs.Bool("quick", false, "shrink instance sizes for a fast smoke run")
	seed := fs.Int64("seed", 1, "random seed")
	list := fs.Bool("list", false, "list experiments and exit")
	chaos := fs.Bool("chaos", false, "run the chaos/resilience scenario (alias for -exp E15)")
	jsonPath := fs.String("json", "", "run the perf-baseline suite and write JSON to this path ('-' for stdout)")
	baseline := fs.String("baseline", "", "with -json: compare allocs/op against this committed baseline and fail on regression")
	compare := fs.String("compare", "", "with -json: print a markdown old-vs-new table against this document (informational, never fails)")
	workers := fs.Int("workers", 0, "cap GOMAXPROCS for the whole run (0 = leave as is)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}
	if *jsonPath != "" {
		return runJSON(*jsonPath, *quick, *baseline, *compare, out)
	}
	if *baseline != "" {
		return fmt.Errorf("-baseline requires -json")
	}
	if *compare != "" {
		return fmt.Errorf("-compare requires -json")
	}
	if *chaos {
		if *exp != "all" && !strings.EqualFold(*exp, "E15") {
			return fmt.Errorf("-chaos conflicts with -exp %s", *exp)
		}
		*exp = "E15"
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-4s %-45s %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}
	cfg := experiments.Config{Out: out, Quick: *quick, Seed: *seed}
	if strings.EqualFold(*exp, "all") {
		return experiments.RunAll(cfg)
	}
	e, ok := experiments.Find(strings.ToUpper(*exp))
	if !ok {
		var ids []string
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
		return fmt.Errorf("unknown experiment %q (have %s)", *exp, strings.Join(ids, ", "))
	}
	fmt.Fprintf(out, "== %s: %s ==\nclaim: %s\n\n", e.ID, e.Title, e.Claim)
	return e.Run(cfg)
}
