package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"fsdl/internal/core"
	"fsdl/internal/gen"
	"fsdl/internal/graph"
	"fsdl/internal/labelstore"
	"fsdl/internal/liveupdate"
	"fsdl/internal/server"
)

// This file is the machine-readable perf baseline: `fsdl-bench -json
// PATH` runs a fixed suite of micro-benchmarks through testing.Benchmark
// and writes one JSON document (schema fsdl-bench-v1) that CI archives
// as BENCH_PR*.json. The suite covers the four costs the query fast
// path optimizes — scheme build, label extraction (cold and warm-cache),
// decode vs |F|, and server batch throughput — plus the live-update
// write path: mutation apply, the compact+swap cycle, the delta-scoped
// incremental rebuild, and the WAL's group-commit append.

// benchResult is one measured kernel.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// PairsPerSec is set only for the server batch kernel.
	PairsPerSec float64 `json:"pairs_per_sec,omitempty"`
}

// benchDoc is the whole emitted document.
type benchDoc struct {
	Schema  string        `json:"schema"`
	Quick   bool          `json:"quick"`
	GOOS    string        `json:"goos"`
	GOARCH  string        `json:"goarch"`
	CPUs    int           `json:"cpus"`
	Results []benchResult `json:"results"`
}

func measure(name string, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runJSON executes the suite and writes the document to path ("-" for
// stdout). quick shrinks instance sizes so CI smoke runs stay fast. When
// baseline names a previously committed document, the run fails if any
// kernel regressed against it (see checkBaseline); compare names a
// document to diff against informationally (see compareDoc).
func runJSON(path string, quick bool, baseline, compare string, log io.Writer) error {
	side := 24
	if quick {
		side = 12
	}
	g := gen.Grid2D(side, side)
	n := g.NumVertices()

	doc := benchDoc{
		Schema: "fsdl-bench-v1",
		Quick:  quick,
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.GOMAXPROCS(0),
	}
	add := func(r benchResult) {
		doc.Results = append(doc.Results, r)
		fmt.Fprintf(log, "%-28s %12.0f ns/op %8d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}

	// 1. Preprocessing: net hierarchy + level store, serial and with the
	// full worker pool. On a 1-CPU host the two coincide; the determinism
	// contract (identical scheme bytes for any worker count) is what the
	// tests enforce, so both entries measure the same output.
	add(measure(fmt.Sprintf("build_scheme_grid%d_w1", side), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildSchemeWorkers(g, 2, 1); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add(measure(fmt.Sprintf("build_scheme_grid%d_wmax", side), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildSchemeWorkers(g, 2, 0); err != nil {
				b.Fatal(err)
			}
		}
	}))

	s, err := core.BuildScheme(g, 2)
	if err != nil {
		return err
	}

	// 2a. Label extraction, cold: cache disabled, every call extracts.
	s.SetCacheLimit(0)
	add(measure("label_extract_cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Label(n / 2)
		}
	}))

	// 2b. Label extraction, warm: the sharded-LRU hit path.
	s.SetCacheLimit(core.DefaultLabelCacheSize)
	s.Label(n / 2)
	add(measure("label_extract_warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Label(n / 2)
		}
	}))

	// 3. Decode vs |F|: the pooled fast path, labels prefetched. F64
	// pushes past one bitmask word (>62 ball centers disable the fused
	// admission masks), so it guards the generic multi-word path too.
	s.SetCacheLimit(4096)
	for _, nf := range []int{1, 4, 16, 64} {
		rng := rand.New(rand.NewSource(2))
		f := graph.NewFaultSet()
		for f.Size() < nf {
			v := rng.Intn(n)
			if v != 0 && v != n-1 {
				f.AddVertex(v)
			}
		}
		q, err := s.NewQuery(0, n-1, f)
		if err != nil {
			return err
		}
		add(measure(fmt.Sprintf("decode_F%d", nf), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q.Distance()
			}
		}))
		if nf == 16 {
			// Path reporting on the same query: decode + parent-tree
			// walk into a reused buffer, still allocation-free.
			var dec core.Decoder
			var pbuf []int32
			add(measure("decode_path_F16", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_, pbuf, _ = dec.DecodePath(q, pbuf[:0])
				}
			}))
			dec.Release()
		}
	}

	// 4. Server batch throughput: distinct pairs per op, result cache
	// disabled, so every answer runs the full label-fetch + decode path.
	var buf sliceBuffer
	if err := labelstore.Save(&buf, s, nil); err != nil {
		return err
	}
	st, err := labelstore.Load(&buf)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{Store: st, CacheCapacity: -1})
	if err != nil {
		return err
	}
	batch := 64
	if quick {
		batch = 16
	}
	rng := rand.New(rand.NewSource(3))
	pairs := make([][2]int, batch)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	faults := graph.NewFaultSet()
	faults.AddVertex(n / 3)
	r := measure("server_batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := srv.AnswerPairs(context.Background(), pairs, &server.QueryOptions{Faults: faults}); err != nil {
				b.Fatal(err)
			}
		}
	})
	r.PairsPerSec = float64(batch) / (r.NsPerOp / 1e9)
	add(r)

	// 5a. Live mutation apply: validation + delta bookkeeping on the
	// write path (no WAL, so fsync latency doesn't drown the CPU cost).
	// Insert/delete of the same edge nets to zero, keeping state flat
	// across iterations.
	lp, err := liveupdate.Open(liveupdate.Config{Base: g})
	if err != nil {
		return err
	}
	lu, lv := int32(0), int32(n-1)
	add(measure("mutate_apply", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lp.Apply([]liveupdate.Mutation{{Op: liveupdate.MutInsert, U: lu, V: lv}}); err != nil {
				b.Fatal(err)
			}
			if _, err := lp.Apply([]liveupdate.Mutation{{Op: liveupdate.MutDelete, U: lu, V: lv}}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// 5b. Full compact + swap cycle on a small live server: generation
	// build, on-disk manifest write, store reload, atomic source swap
	// and delta commit. One toggled mutation per cycle keeps every
	// compaction non-trivial without growing the delta.
	side2 := 8
	if quick {
		side2 = 6
	}
	g2 := gen.Grid2D(side2, side2)
	s2, err := core.BuildScheme(g2, 2)
	if err != nil {
		return err
	}
	var buf2 sliceBuffer
	if err := labelstore.Save(&buf2, s2, nil); err != nil {
		return err
	}
	st2, err := labelstore.Load(&buf2)
	if err != nil {
		return err
	}
	root, err := os.MkdirTemp("", "fsdl-bench-gens-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	lp2, err := liveupdate.Open(liveupdate.Config{Base: g2})
	if err != nil {
		return err
	}
	liveSrv, err := server.New(server.Config{Store: st2, Live: lp2, LiveRoot: root, CacheCapacity: -1})
	if err != nil {
		return err
	}
	bridge := int32(g2.NumVertices() - 1)
	present := false
	add(measure("compact_swap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op := liveupdate.MutInsert
			if present {
				op = liveupdate.MutDelete
			}
			present = !present
			if _, err := liveSrv.Mutate([]liveupdate.Mutation{{Op: op, U: 0, V: bridge}}); err != nil {
				b.Fatal(err)
			}
			if _, err := liveSrv.Compact(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// 5c. Incremental compaction on a small-delta workload: a ring
	// lattice (±1, ±2 chords) whose diameter dwarfs the scheme's
	// largest coverage radius, so one deleted chord dirties well under
	// 10% of the labels. Each kernel covers the full compaction-shaped
	// path — scheme build plus label extraction — because extraction is
	// where nearly all compaction time goes; the incremental side
	// extracts only the dirty labels (exactly what SaveSpliced does),
	// the full side extracts every label. The ratio of the two is the
	// incremental speedup. Single worker on both sides: deterministic
	// allocs (this kernel is gated exactly) and an apples-to-apples
	// CPU comparison.
	ringN := 2048
	if quick {
		ringN = 512
	}
	rb := graph.NewBuilder(ringN)
	for i := 0; i < ringN; i++ {
		rb.AddEdge(i, (i+1)%ringN)
		rb.AddEdge(i, (i+2)%ringN)
	}
	ringG, err := rb.Build()
	if err != nil {
		return err
	}
	prevScheme, err := core.BuildSchemeWorkers(ringG, 2, 1)
	if err != nil {
		return err
	}
	rb2 := graph.NewBuilder(ringN)
	for i := 0; i < ringN; i++ {
		if i != 0 {
			rb2.AddEdge(i, (i+1)%ringN)
		}
		rb2.AddEdge(i, (i+2)%ringN)
	}
	mutG, err := rb2.Build()
	if err != nil {
		return err
	}
	mutated := [][2]int32{{0, 1}}
	incR := measure("compact_incremental_small_delta", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inc, err := core.BuildSchemeIncremental(prevScheme, mutG, mutated, 1)
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range inc.Dirty {
				inc.Scheme.Label(int(v))
			}
		}
	})
	add(incR)
	fullR := measure("compact_full_small_delta", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := core.BuildSchemeWorkers(mutG, 2, 1)
			if err != nil {
				b.Fatal(err)
			}
			for v := 0; v < ringN; v++ {
				s.Label(v)
			}
		}
	})
	add(fullR)
	if incR.NsPerOp > 0 {
		fmt.Fprintf(log, "incremental compaction speedup on ring%d, 1-edge delta: %.1fx\n",
			ringN, fullR.NsPerOp/incR.NsPerOp)
	}

	// 5d. WAL group append: one 4-mutation batch encoded and written in
	// a single append, then one group-commit fsync — the per-batch
	// durability cost the mutate path pays. A real file, so the fsync
	// is in the measurement on purpose.
	walDir, err := os.MkdirTemp("", "fsdl-bench-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	w, _, err := liveupdate.OpenWAL(filepath.Join(walDir, "bench.wal"))
	if err != nil {
		return err
	}
	defer w.Close()
	groupMuts := []liveupdate.Mutation{
		{Op: liveupdate.MutInsert, U: 0, V: 1},
		{Op: liveupdate.MutDelete, U: 0, V: 1},
		{Op: liveupdate.MutInsert, U: 0, V: 2},
		{Op: liveupdate.MutDelete, U: 0, V: 2},
	}
	add(measure("wal_append_group", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := w.Append(groupMuts); err != nil {
				b.Fatal(err)
			}
			if err := w.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// 6. Out-of-core storage: the FSDL3 mmap path (docs/STORAGE.md). The
	// same scheme saved as FSDL2, FSDL3 and compressed FSDL3 gives the
	// bytes-per-vertex comparison the PR's compression claim rests on;
	// load_mmap_cold measures the open-validate-serve-close cycle of the
	// mapped container (header+index parse only — records stay on disk
	// until touched), decode_mmap_F16 the robust-query fast path served
	// entirely through the mapped, compressed container.
	storeDir, err := os.MkdirTemp("", "fsdl-bench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	writeStore := func(name string, format3, compress bool) (string, int64, error) {
		p := filepath.Join(storeDir, name)
		f, err := os.Create(p)
		if err != nil {
			return "", 0, err
		}
		if format3 {
			err = labelstore.SaveFormat3(f, s, nil, compress)
		} else {
			err = labelstore.Save(f, s, nil)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return "", 0, err
		}
		fi, err := os.Stat(p)
		if err != nil {
			return "", 0, err
		}
		return p, fi.Size(), nil
	}
	_, size2, err := writeStore("labels2.fsdl", false, false)
	if err != nil {
		return err
	}
	_, size3, err := writeStore("labels3.fsdl", true, false)
	if err != nil {
		return err
	}
	path3c, size3c, err := writeStore("labels3c.fsdl", true, true)
	if err != nil {
		return err
	}
	// Bytes-per-vertex pseudo-kernels: BytesPerOp carries whole-file
	// bytes per vertex (one "op" = one vertex), so the committed JSON
	// documents the storage claim next to the timing kernels.
	for _, e := range []struct {
		name string
		size int64
	}{
		{"label_bytes_per_vertex_fsdl2", size2},
		{"label_bytes_per_vertex_fsdl3", size3},
		{"label_bytes_per_vertex_fsdl3c", size3c},
	} {
		r := benchResult{Name: e.name, Iterations: n, BytesPerOp: (e.size + int64(n) - 1) / int64(n)}
		doc.Results = append(doc.Results, r)
		fmt.Fprintf(log, "%-28s %12d bytes/vertex (file %d bytes)\n", r.Name, r.BytesPerOp, e.size)
	}
	reduction := 100 * (1 - float64(size3c)/float64(size2))
	fmt.Fprintf(log, "compressed FSDL3 vs FSDL2: %.1f%% smaller on grid%d\n", reduction, side)
	if !quick && reduction < 30 {
		// The storage engine's headline claim; a codec or layout change
		// that erodes it should fail the perf suite, not slip through.
		return fmt.Errorf("compressed FSDL3 only %.1f%% smaller than FSDL2 (claim: >= 30%%)", reduction)
	}

	add(measure("load_mmap_cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st3, err := labelstore.Open(path3c)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, ok := st3.Raw(n / 2); !ok {
				b.Fatal("record missing")
			}
			if err := st3.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	st3, err := labelstore.Open(path3c)
	if err != nil {
		return err
	}
	defer st3.Close()
	rng16 := rand.New(rand.NewSource(2))
	f16 := graph.NewFaultSet()
	for f16.Size() < 16 {
		v := rng16.Intn(n)
		if v != 0 && v != n-1 {
			f16.AddVertex(v)
		}
	}
	if _, err := st3.DistanceRobust(0, n-1, f16, 0); err != nil {
		return err
	}
	add(measure("decode_mmap_F16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := st3.DistanceRobust(0, n-1, f16, 0); err != nil {
				b.Fatal(err)
			}
		}
	}))

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		if _, err := log.Write(out); err != nil {
			return err
		}
	} else if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	if compare != "" {
		if err := compareDoc(doc, compare, log); err != nil {
			return err
		}
	}
	if baseline != "" {
		return checkBaseline(doc, baseline, log)
	}
	return nil
}

// checkBaseline compares the run's allocs/op against a committed baseline
// document and fails on regression. Only kernels present in both documents
// are compared, so adding or renaming kernels never breaks the gate.
// Allocation counts are deterministic (unlike wall-clock), which makes
// this the one bench metric CI can gate on across heterogeneous runners;
// the slack (25% + 8) absorbs Go-runtime variation between toolchains.
//
// Decode kernels get two extra, stricter gates: allocs/op must not
// exceed the baseline at all (the decode hot path is pooled and
// allocation-free by design — one stray byte is a leak, not noise),
// and ns/op must stay within 30% of the baseline. Wall-clock gating is
// normally hopeless across heterogeneous runners, but the decode
// kernels are single-threaded, cache-resident and run no I/O, so 30%
// headroom comfortably covers runner jitter while still catching the
// order-of-magnitude class of regression (an accidental map in the
// hot loop blows past it instantly).
//
// strictKernels get the same decode-grade gate (exact allocs, ns/op
// within 30%): single-threaded kernels whose cost the PR's perf claims
// rest on, so drift is a regression rather than noise.
var strictKernels = map[string]bool{
	"compact_incremental_small_delta": true,
	"wal_append_group":                true,
}

func checkBaseline(doc benchDoc, path string, log io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	byName := make(map[string]benchResult, len(base.Results))
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	var regressions []string
	compared := 0
	for _, r := range doc.Results {
		b, ok := byName[r.Name]
		if !ok {
			continue
		}
		compared++
		strict := strings.HasPrefix(r.Name, "decode_") || strictKernels[r.Name]
		limit := int64(float64(b.AllocsPerOp)*1.25) + 8
		if strict {
			limit = b.AllocsPerOp
		}
		if r.AllocsPerOp > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d allocs/op (baseline %d, limit %d)", r.Name, r.AllocsPerOp, b.AllocsPerOp, limit))
		}
		if strict {
			if nsLimit := b.NsPerOp * 1.30; r.NsPerOp > nsLimit {
				regressions = append(regressions,
					fmt.Sprintf("%s: %.0f ns/op (baseline %.0f, limit %.0f)", r.Name, r.NsPerOp, b.NsPerOp, nsLimit))
			}
		}
	}
	if compared == 0 {
		return fmt.Errorf("baseline %s: no kernel names in common (schema drift?)", path)
	}
	if len(regressions) > 0 {
		for _, s := range regressions {
			fmt.Fprintln(log, "BENCH REGRESSION", s)
		}
		return fmt.Errorf("%d bench regression(s) vs %s", len(regressions), path)
	}
	fmt.Fprintf(log, "baseline %s: %d kernels compared, no regressions\n", path, compared)
	return nil
}

// compareDoc renders a benchstat-style markdown table of the run
// against an older committed document — old vs new ns/op and allocs/op
// with the relative delta — for humans (CI appends it to the job
// summary). Unlike checkBaseline it never fails: it reports
// improvements just as loudly as regressions.
func compareDoc(doc benchDoc, path string, log io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var old benchDoc
	if err := json.Unmarshal(raw, &old); err != nil {
		return fmt.Errorf("compare %s: %w", path, err)
	}
	byName := make(map[string]benchResult, len(old.Results))
	for _, r := range old.Results {
		byName[r.Name] = r
	}
	fmt.Fprintf(log, "\n### Bench vs %s\n\n", path)
	fmt.Fprintln(log, "| kernel | old ns/op | new ns/op | delta | old allocs | new allocs |")
	fmt.Fprintln(log, "|---|---:|---:|---:|---:|---:|")
	for _, r := range doc.Results {
		o, ok := byName[r.Name]
		if !ok {
			fmt.Fprintf(log, "| %s | — | %.0f | new | — | %d |\n", r.Name, r.NsPerOp, r.AllocsPerOp)
			continue
		}
		delta := "~"
		if o.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(r.NsPerOp-o.NsPerOp)/o.NsPerOp)
		}
		fmt.Fprintf(log, "| %s | %.0f | %.0f | %s | %d | %d |\n",
			r.Name, o.NsPerOp, r.NsPerOp, delta, o.AllocsPerOp, r.AllocsPerOp)
	}
	return nil
}

// sliceBuffer is a minimal in-memory io.ReadWriter (avoids bytes.Buffer
// aliasing concerns across Save/Load).
type sliceBuffer struct {
	data []byte
	off  int
}

func (sb *sliceBuffer) Write(p []byte) (int, error) {
	sb.data = append(sb.data, p...)
	return len(p), nil
}

func (sb *sliceBuffer) Read(p []byte) (int, error) {
	if sb.off >= len(sb.data) {
		return 0, io.EOF
	}
	k := copy(p, sb.data[sb.off:])
	sb.off += k
	return k, nil
}
