// Command fsdl-shard serves one partition of an FSDL label store over
// the cluster wire protocol. A fleet of shards plus a fsdl-serve
// frontend (-cluster) is the horizontally scaled deployment shape: each
// shard holds the raw label bytes for its slice of the consistent-hash
// ring and ships them on request; all decoding happens at the frontend.
// Partitions come from `fsdl partition`. See docs/CLUSTER.md.
//
// Usage:
//
//	fsdl-shard -store shard0.fsdl -addr :9000 [-name shard0] [-salvage] [-mmap] [-compress]
//
// With -mmap an FSDL3 partition is served straight from the OS page
// cache — the shard's memory footprint is bounded by what the kernel
// keeps warm, not the store size. -compress makes repair persists
// (-persist) write the compressed FSDL3 container.
//
// A replacement for a dead shard starts empty and is filled by the
// frontend's anti-entropy repairer (see docs/CLUSTER.md, "Membership &
// repair"):
//
//	fsdl-shard -bootstrap-n 65536 -addr :9003 -name shard3 [-persist shard3.fsdl]
//
// With -generation-dir the shard participates in live updates (see
// docs/LIVE.md): it activates new label generations on the frontend's
// command, and — when -store is omitted — boots straight from the
// newest generation in the directory:
//
//	fsdl-shard -generation-dir gens/ -name shard0 -addr :9000
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"fsdl/internal/cluster"
	"fsdl/internal/labelstore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fsdl-shard:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fsdl-shard", flag.ContinueOnError)
	storePath := fs.String("store", "", "partition store file (required unless -bootstrap-n; produced by `fsdl partition`)")
	addr := fs.String("addr", ":9000", "listen address")
	name := fs.String("name", "", "shard name for error messages (default: store file name)")
	salvage := fs.Bool("salvage", false, "tolerate a damaged partition: serve the records that survive")
	bootstrapN := fs.Int("bootstrap-n", 0, "start as an empty replacement shard over this vertex space; repair fills it (mutually exclusive with -store)")
	persist := fs.String("persist", "", "persist the store to this file after repair pulls (atomic temp+rename)")
	repairRate := fs.Int("repair-rate", 0, "max records/sec installed by repair pulls (0 = 50000, negative = unlimited)")
	genDir := fs.String("generation-dir", "", "versioned label generation root; boots from the newest generation when -store is omitted")
	mmap := fs.Bool("mmap", false, "serve FSDL3 stores straight from the OS page cache (mmap) instead of loading them into heap")
	compress := fs.Bool("compress", false, "persist repairs as a compressed FSDL3 container (implies FSDL3 output for -persist)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath != "" && *bootstrapN > 0 {
		return fmt.Errorf("-store and -bootstrap-n are mutually exclusive")
	}
	if *storePath == "" && *bootstrapN <= 0 && *genDir == "" {
		return fmt.Errorf("one of -store, -bootstrap-n or -generation-dir is required")
	}

	var st *labelstore.Store
	var rep *labelstore.SalvageReport
	generation := uint64(0)
	switch {
	case *storePath == "" && *bootstrapN <= 0:
		// Generation boot: serve the shard's own partition file from the
		// newest intact generation (full labels when none was written).
		if *name == "" {
			return fmt.Errorf("-name is required with -generation-dir (it selects the partition file)")
		}
		m, dir, ok, err := labelstore.LatestGeneration(*genDir)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("no intact generation under %s", *genDir)
		}
		file := labelstore.GenerationLabelsFile
		if m.File(*name+".fsdl") != nil {
			file = *name + ".fsdl"
		}
		open := labelstore.OpenHeap
		if *mmap {
			open = labelstore.Open
		}
		st, err = open(filepath.Join(dir, file))
		if err != nil {
			return fmt.Errorf("load generation %d %s: %w", m.Generation, file, err)
		}
		generation = m.Generation
		fmt.Fprintf(os.Stderr, "fsdl-shard: %s booting from generation %d (%s)\n", *name, m.Generation, dir)
	case *bootstrapN > 0:
		var err error
		st, err = labelstore.NewEmpty(*bootstrapN)
		if err != nil {
			return err
		}
		if *name == "" {
			return fmt.Errorf("-name is required with -bootstrap-n (the ring routes by name)")
		}
		fmt.Fprintf(os.Stderr, "fsdl-shard: %s bootstrapping empty over n=%d — answers unknown until repair seals it\n",
			*name, *bootstrapN)
	default:
		if *name == "" {
			*name = *storePath
		}
		var err error
		if *salvage {
			// OpenPartial keeps an FSDL3 store mmap-backed through salvage;
			// FSDL1/2 files go through the stream salvager exactly as before.
			st, rep, err = labelstore.OpenPartial(*storePath)
			if err == nil && rep.Lost() > 0 {
				fmt.Fprintf(os.Stderr, "fsdl-shard: salvage: kept %d/%d records — lost ones answer as unknown so the frontend fails over to replicas\n",
					rep.Kept, rep.Total)
			}
		} else if *mmap {
			st, err = labelstore.Open(*storePath)
		} else {
			st, err = labelstore.OpenHeap(*storePath)
		}
		if err != nil {
			return fmt.Errorf("load %s: %w", *storePath, err)
		}
	}

	// The report makes the shard answer salvage-lost vertices with the
	// wire protocol's "unknown" state instead of authoritative absence;
	// bootstrap does the same for the whole vertex space.
	srv, err := cluster.NewShardServer(cluster.ShardConfig{
		Store:          st,
		Name:           *name,
		Report:         rep,
		Generation:     generation,
		GenerationRoot: *genDir,
		Bootstrap:      *bootstrapN > 0,
		PersistPath:    *persist,
		RepairRate:     *repairRate,
		Mmap:           *mmap,
		// Persist in the store's own container: a shard booted from an
		// FSDL3 file (or asked to compress) writes FSDL3 back, so a
		// restart round-trips through the same format.
		PersistFormat3:  *compress || st.Format() == 3,
		PersistCompress: *compress,
	})
	if err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()
	fmt.Fprintf(os.Stderr, "fsdl-shard: %s serving %d labels over n=%d vertices on %s\n",
		*name, st.NumLabels(), st.NumVertices(), *addr)

	select {
	case err := <-errCh:
		return err
	case <-sig:
	}
	srv.Close()
	fmt.Fprintf(os.Stderr, "fsdl-shard: %s shut down after %d requests, %d labels served, %d records repaired in\n",
		*name, srv.Requests.Load(), srv.LabelsServed.Load(), srv.RepairInstalled.Load())
	return nil
}
