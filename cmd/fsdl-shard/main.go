// Command fsdl-shard serves one partition of an FSDL label store over
// the cluster wire protocol. A fleet of shards plus a fsdl-serve
// frontend (-cluster) is the horizontally scaled deployment shape: each
// shard holds the raw label bytes for its slice of the consistent-hash
// ring and ships them on request; all decoding happens at the frontend.
// Partitions come from `fsdl partition`. See docs/CLUSTER.md.
//
// Usage:
//
//	fsdl-shard -store shard0.fsdl -addr :9000 [-name shard0] [-salvage]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fsdl/internal/cluster"
	"fsdl/internal/labelstore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fsdl-shard:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fsdl-shard", flag.ContinueOnError)
	storePath := fs.String("store", "", "partition store file (required; produced by `fsdl partition`)")
	addr := fs.String("addr", ":9000", "listen address")
	name := fs.String("name", "", "shard name for error messages (default: store file name)")
	salvage := fs.Bool("salvage", false, "tolerate a damaged partition: serve the records that survive")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" {
		return fmt.Errorf("-store is required")
	}
	if *name == "" {
		*name = *storePath
	}

	f, err := os.Open(*storePath)
	if err != nil {
		return err
	}
	var st *labelstore.Store
	var rep *labelstore.SalvageReport
	if *salvage {
		st, rep, err = labelstore.LoadPartial(f)
		if err == nil && rep.Lost() > 0 {
			fmt.Fprintf(os.Stderr, "fsdl-shard: salvage: kept %d/%d records — lost ones answer as unknown so the frontend fails over to replicas\n",
				rep.Kept, rep.Total)
		}
	} else {
		st, err = labelstore.Load(f)
	}
	f.Close()
	if err != nil {
		return fmt.Errorf("load %s: %w", *storePath, err)
	}

	// The report makes the shard answer salvage-lost vertices with the
	// wire protocol's "unknown" state instead of authoritative absence.
	srv, err := cluster.NewShardServer(cluster.ShardConfig{Store: st, Name: *name, Report: rep})
	if err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()
	fmt.Fprintf(os.Stderr, "fsdl-shard: %s serving %d labels over n=%d vertices on %s\n",
		*name, st.NumLabels(), st.NumVertices(), *addr)

	select {
	case err := <-errCh:
		return err
	case <-sig:
	}
	srv.Close()
	fmt.Fprintf(os.Stderr, "fsdl-shard: %s shut down after %d requests, %d labels served\n",
		*name, srv.Requests.Load(), srv.LabelsServed.Load())
	return nil
}
