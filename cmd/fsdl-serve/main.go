// Command fsdl-serve is the long-lived query service over an FSDL label
// store: distance / batch-distance / connected queries and dynamic
// fail/recover over HTTP/JSON, with a result cache, admission control,
// and Prometheus metrics. See docs/SERVER.md for the API.
//
// Usage:
//
//	fsdl-serve -store labels.fsdl [-addr :8080] [-salvage] [-graph graph.txt]
//	           [-workers N] [-queue N] [-deadline 5s] [-budget 0]
//	           [-cache 4096] [-cache-shards 8] [-eps 2] [-mmap]
//
// With -mmap an FSDL3 store (see docs/STORAGE.md) is served straight
// from the OS page cache, so stores larger than RAM stay servable;
// -compress makes live compactions emit compressed FSDL3 generations.
//
// Cluster mode replaces the local store with a scatter-gather frontend
// over fsdl-shard servers (see docs/CLUSTER.md):
//
//	fsdl-serve -cluster members.txt [-hedge 100ms] [-fetch-timeout 500ms]
//	           [-repair 2s] [-retry-budget 0.1]
//
// Live mode accepts streaming edge mutations on /v1/mutate, journaled
// to a WAL, and bakes them into versioned label generations on
// /v1/compact (see docs/LIVE.md). A restart resumes from the newest
// generation under -live-root plus the WAL tail; with no generation
// yet, -graph (or -store + -graph) provides the base:
//
//	fsdl-serve -live-root gens/ [-wal gens/mutations.wal]
//	           [-compact-workers N] [-store labels.fsdl -graph graph.txt]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"fsdl"
	"fsdl/internal/cluster"
	"fsdl/internal/labelstore"
	"fsdl/internal/liveupdate"
	"fsdl/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fsdl-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fsdl-serve", flag.ContinueOnError)
	storePath := fs.String("store", "", "label store file (required unless -cluster or -live-root with an existing generation)")
	clusterPath := fs.String("cluster", "", "cluster membership file; serve from fsdl-shard servers instead of a local store")
	hedge := fs.Duration("hedge", 0, "cluster: delay before hedging a fetch to a replica (0 = fetch-timeout/5, negative disables)")
	fetchTimeout := fs.Duration("fetch-timeout", 500*time.Millisecond, "cluster: per-attempt shard fetch timeout")
	repairEvery := fs.Duration("repair", 2*time.Second, "cluster: anti-entropy repair sweep interval (0 disables)")
	retryBudget := fs.Float64("retry-budget", 0, "cluster: retries+hedges per first attempt (0 = 0.1, negative disables)")
	salvage := fs.Bool("salvage", false, "tolerate a damaged store: skip corrupt records, answer conservatively")
	mmap := fs.Bool("mmap", false, "serve an FSDL3 store from the OS page cache (mmap) instead of loading it into heap")
	compress := fs.Bool("compress", false, "live: compactions write compressed FSDL3 generations")
	graphPath := fs.String("graph", "", "graph file; enables the dynamic-oracle query path")
	eps := fs.Float64("eps", 2, "dynamic oracle precision epsilon")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth beyond the worker pool (0 = 4×workers)")
	deadline := fs.Duration("deadline", 5*time.Second, "default per-request deadline")
	budget := fs.Int("budget", 0, "default per-query decode work budget (0 = unlimited)")
	cacheCap := fs.Int("cache", 4096, "result cache capacity in entries (negative disables)")
	cacheShards := fs.Int("cache-shards", 8, "result cache shard count")
	liveRoot := fs.String("live-root", "", "enable live updates: versioned generation root directory (see docs/LIVE.md)")
	walPath := fs.String("wal", "", "live: mutation WAL path (default <live-root>/mutations.wal)")
	compactWorkers := fs.Int("compact-workers", 0, "live: compaction build parallelism (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath != "" && *clusterPath != "" {
		return fmt.Errorf("-store and -cluster are mutually exclusive")
	}
	if *storePath == "" && *clusterPath == "" && *liveRoot == "" {
		return fmt.Errorf("one of -store, -cluster or -live-root is required")
	}

	cfg := server.Config{
		Epsilon:         *eps,
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		DefaultBudget:   *budget,
		CacheCapacity:   *cacheCap,
		CacheShards:     *cacheShards,
	}
	var (
		member *cluster.Membership
		fe     *cluster.Frontend
	)
	switch {
	case *storePath == "" && *clusterPath == "":
		// Live-only boot: the store comes from the newest generation
		// under -live-root, loaded below.
	case *clusterPath != "":
		m, err := cluster.LoadMembership(*clusterPath)
		if err != nil {
			return err
		}
		fe, err = cluster.NewFrontend(cluster.FrontendConfig{
			Membership:       m,
			HedgeDelay:       *hedge,
			FetchTimeout:     *fetchTimeout,
			RepairInterval:   *repairEvery,
			RetryBudgetRatio: *retryBudget,
		})
		if err != nil {
			return err
		}
		defer fe.Close()
		member = m
		cfg.Source = fe
	case *salvage:
		st, rep, err := labelstore.OpenPartial(*storePath)
		if err != nil {
			return err
		}
		if rep.Kept == 0 {
			return fmt.Errorf("store %s is unreadable: 0 of %d records salvaged (truncated: %v)",
				*storePath, rep.Total, rep.Truncated)
		}
		if rep.Lost() > 0 {
			fmt.Fprintf(os.Stderr, "fsdl-serve: salvage: kept %d/%d records (%d corrupt, truncated: %v) — lost fault labels answered as safe upper bounds\n",
				rep.Kept, rep.Total, len(rep.Corrupt), rep.Truncated)
		}
		cfg.Store, cfg.Report = st, rep
	default:
		open := labelstore.OpenHeap
		if *mmap {
			open = labelstore.Open
		}
		st, err := open(*storePath)
		if err != nil {
			return fmt.Errorf("load %s: %w (use -salvage to tolerate damage)", *storePath, err)
		}
		cfg.Store = st
	}
	if *compress {
		cfg.CompactFormat, cfg.CompactCompress = 3, true
	}

	if *graphPath != "" {
		gf, err := os.Open(*graphPath)
		if err != nil {
			return err
		}
		g, err := fsdl.ReadGraph(gf)
		gf.Close()
		if err != nil {
			return err
		}
		cfg.Graph = g
	}

	if *liveRoot != "" {
		if err := os.MkdirAll(*liveRoot, 0o755); err != nil {
			return err
		}
		if *walPath == "" {
			*walPath = filepath.Join(*liveRoot, "mutations.wal")
		}
		// Resume from the newest intact generation: its snapshot graph
		// is the WAL replay base, its store the serving labels. With no
		// generation yet, -graph provides the base the given store (or
		// cluster) was built on.
		base := cfg.Graph
		generation := uint64(0)
		if m, dir, ok, err := labelstore.LatestGeneration(*liveRoot); err != nil {
			return err
		} else if ok {
			base, err = liveupdate.LoadGenerationBase(dir)
			if err != nil {
				return err
			}
			generation = m.Generation
			if cfg.Source == nil {
				// Local mode always serves the generation's own labels —
				// a -store file from before the compaction would pair
				// stale labels with the newer base graph.
				st, err := liveupdate.LoadGenerationStore(dir)
				if err != nil {
					return err
				}
				if cfg.Store != nil {
					fmt.Fprintf(os.Stderr, "fsdl-serve: live: ignoring -store in favor of generation %d labels\n", m.Generation)
				}
				cfg.Store, cfg.Report = st, nil
			}
			fmt.Fprintf(os.Stderr, "fsdl-serve: live: resuming from generation %d (%s)\n", m.Generation, dir)
		}
		if base == nil {
			return fmt.Errorf("live: no generation under %s yet — provide the base graph with -graph", *liveRoot)
		}
		if cfg.Store == nil && cfg.Source == nil {
			return fmt.Errorf("live: no generation under %s yet — provide labels with -store or -cluster", *liveRoot)
		}
		p, err := liveupdate.Open(liveupdate.Config{Base: base, WALPath: *walPath, Generation: generation})
		if err != nil {
			return err
		}
		cfg.Live, cfg.LiveRoot, cfg.CompactWorkers = p, *liveRoot, *compactWorkers
		if pending := p.Pending(); pending > 0 {
			fmt.Fprintf(os.Stderr, "fsdl-serve: live: WAL replay restored %d pending delta edges (answers inexact until the next compaction)\n", pending)
		}
		if fe != nil {
			// Cluster + live: compaction writes one partition file per
			// boot-membership shard into each generation, so a swap —
			// scoped to the changed shards after an incremental build —
			// loads straight from the generation directory.
			parts := member.Ring().Partition(base.NumVertices())
			cfg.Partitions = make(map[string][]int, len(member.Nodes))
			for i, node := range member.Nodes {
				cfg.Partitions[node.Name] = parts[i]
			}
			// Surface the pipeline's pending delta and WAL retention in
			// `fsdl cluster status`.
			fe.SetLiveStats(func() cluster.LiveStats {
				ls := cluster.LiveStats{
					PendingEdges: append(p.Patches(), p.FaultEdges()...),
				}
				if ws, ok := p.WALStats(); ok {
					ls.WALSegments = ws.Segments
					if !ws.OldestSealed.IsZero() {
						ls.WALOldestAge = time.Since(ws.OldestSealed)
					}
				}
				return ls
			})
		}
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	mode := "local store"
	if *clusterPath != "" {
		mode = fmt.Sprintf("cluster of %s", *clusterPath)
	}
	fmt.Fprintf(os.Stderr, "fsdl-serve: serving n=%d vertices from %s on %s\n",
		srv.NumVertices(), mode, *addr)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight queries.
	fmt.Fprintln(os.Stderr, "fsdl-serve: shutting down, draining in-flight queries")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if cfg.Live != nil {
		// Drain the mutation WAL: every acknowledged mutation is fsynced
		// and the file closed before the process exits. The final flush
		// count lets operators reconcile the drain against their last
		// metrics scrape.
		if err := srv.Close(); err != nil {
			return fmt.Errorf("drain mutation WAL: %w", err)
		}
		fmt.Fprintf(os.Stderr, "fsdl-serve: mutation WAL drained and closed, final fsdl_wal_flushed_total %d\n",
			srv.WALFlushedTotal())
	}
	return nil
}
