// Command fsdl-serve is the long-lived query service over an FSDL label
// store: distance / batch-distance / connected queries and dynamic
// fail/recover over HTTP/JSON, with a result cache, admission control,
// and Prometheus metrics. See docs/SERVER.md for the API.
//
// Usage:
//
//	fsdl-serve -store labels.fsdl [-addr :8080] [-salvage] [-graph graph.txt]
//	           [-workers N] [-queue N] [-deadline 5s] [-budget 0]
//	           [-cache 4096] [-cache-shards 8] [-eps 2]
//
// Cluster mode replaces the local store with a scatter-gather frontend
// over fsdl-shard servers (see docs/CLUSTER.md):
//
//	fsdl-serve -cluster members.txt [-hedge 100ms] [-fetch-timeout 500ms]
//	           [-repair 2s] [-retry-budget 0.1]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fsdl"
	"fsdl/internal/cluster"
	"fsdl/internal/labelstore"
	"fsdl/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fsdl-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fsdl-serve", flag.ContinueOnError)
	storePath := fs.String("store", "", "label store file (required unless -cluster)")
	clusterPath := fs.String("cluster", "", "cluster membership file; serve from fsdl-shard servers instead of a local store")
	hedge := fs.Duration("hedge", 0, "cluster: delay before hedging a fetch to a replica (0 = fetch-timeout/5, negative disables)")
	fetchTimeout := fs.Duration("fetch-timeout", 500*time.Millisecond, "cluster: per-attempt shard fetch timeout")
	repairEvery := fs.Duration("repair", 2*time.Second, "cluster: anti-entropy repair sweep interval (0 disables)")
	retryBudget := fs.Float64("retry-budget", 0, "cluster: retries+hedges per first attempt (0 = 0.1, negative disables)")
	salvage := fs.Bool("salvage", false, "tolerate a damaged store: skip corrupt records, answer conservatively")
	graphPath := fs.String("graph", "", "graph file; enables the dynamic-oracle query path")
	eps := fs.Float64("eps", 2, "dynamic oracle precision epsilon")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth beyond the worker pool (0 = 4×workers)")
	deadline := fs.Duration("deadline", 5*time.Second, "default per-request deadline")
	budget := fs.Int("budget", 0, "default per-query decode work budget (0 = unlimited)")
	cacheCap := fs.Int("cache", 4096, "result cache capacity in entries (negative disables)")
	cacheShards := fs.Int("cache-shards", 8, "result cache shard count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*storePath == "") == (*clusterPath == "") {
		return fmt.Errorf("exactly one of -store and -cluster is required")
	}

	cfg := server.Config{
		Epsilon:         *eps,
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		DefaultBudget:   *budget,
		CacheCapacity:   *cacheCap,
		CacheShards:     *cacheShards,
	}
	switch {
	case *clusterPath != "":
		m, err := cluster.LoadMembership(*clusterPath)
		if err != nil {
			return err
		}
		fe, err := cluster.NewFrontend(cluster.FrontendConfig{
			Membership:       m,
			HedgeDelay:       *hedge,
			FetchTimeout:     *fetchTimeout,
			RepairInterval:   *repairEvery,
			RetryBudgetRatio: *retryBudget,
		})
		if err != nil {
			return err
		}
		defer fe.Close()
		cfg.Source = fe
	case *salvage:
		f, err := os.Open(*storePath)
		if err != nil {
			return err
		}
		st, rep, err := labelstore.LoadPartial(f)
		f.Close()
		if err != nil {
			return err
		}
		if rep.Kept == 0 {
			return fmt.Errorf("store %s is unreadable: 0 of %d records salvaged (truncated: %v)",
				*storePath, rep.Total, rep.Truncated)
		}
		if rep.Lost() > 0 {
			fmt.Fprintf(os.Stderr, "fsdl-serve: salvage: kept %d/%d records (%d corrupt, truncated: %v) — lost fault labels answered as safe upper bounds\n",
				rep.Kept, rep.Total, len(rep.Corrupt), rep.Truncated)
		}
		cfg.Store, cfg.Report = st, rep
	default:
		f, err := os.Open(*storePath)
		if err != nil {
			return err
		}
		st, err := labelstore.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("load %s: %w (use -salvage to tolerate damage)", *storePath, err)
		}
		cfg.Store = st
	}

	if *graphPath != "" {
		gf, err := os.Open(*graphPath)
		if err != nil {
			return err
		}
		g, err := fsdl.ReadGraph(gf)
		gf.Close()
		if err != nil {
			return err
		}
		cfg.Graph = g
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	mode := "local store"
	if *clusterPath != "" {
		mode = fmt.Sprintf("cluster of %s", *clusterPath)
	}
	fmt.Fprintf(os.Stderr, "fsdl-serve: serving n=%d vertices from %s on %s\n",
		srv.NumVertices(), mode, *addr)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight queries.
	fmt.Fprintln(os.Stderr, "fsdl-serve: shutting down, draining in-flight queries")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
