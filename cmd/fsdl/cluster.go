package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"text/tabwriter"
	"time"

	"fsdl/internal/cluster"
)

// cmdCluster is the operator's view of a running cluster frontend: it
// talks to fsdl-serve's /v1/cluster/* admin endpoints.
//
//	fsdl cluster status -frontend http://host:8080
//	fsdl cluster join   -frontend ... -name shard3 -addr 127.0.0.1:9003
//	fsdl cluster leave  -frontend ... -name shard1
//	fsdl cluster drain  -frontend ... -name shard1 [-undrain]
func cmdCluster(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: fsdl cluster <status|join|leave|drain> -frontend URL [...]")
	}
	op := args[0]
	fs := flag.NewFlagSet("cluster "+op, flag.ContinueOnError)
	frontend := fs.String("frontend", "http://127.0.0.1:8080", "fsdl-serve base URL")
	name := fs.String("name", "", "shard name (join/leave/drain)")
	addr := fs.String("addr", "", "shard wire address (join)")
	undrain := fs.Bool("undrain", false, "drain: re-include the shard in routing instead")
	timeout := fs.Duration("timeout", 5*time.Second, "request timeout")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	base := strings.TrimSuffix(*frontend, "/")
	client := &http.Client{Timeout: *timeout}

	switch op {
	case "status":
		var st cluster.ClusterStatus
		if err := clusterGet(client, base+"/v1/cluster/status", &st); err != nil {
			return err
		}
		return printClusterStatus(out, &st)
	case "join", "leave", "drain":
		if *name == "" {
			return fmt.Errorf("cluster %s: -name is required", op)
		}
		body := map[string]any{"name": *name}
		if op == "join" {
			if *addr == "" {
				return fmt.Errorf("cluster join: -addr is required")
			}
			body["addr"] = *addr
		}
		if op == "drain" {
			body["drain"] = !*undrain
		}
		var resp struct {
			Epoch uint64 `json:"epoch"`
		}
		if err := clusterPost(client, base+"/v1/cluster/"+op, body, &resp); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s %s: ring epoch now %d\n", op, *name, resp.Epoch)
		return nil
	default:
		return fmt.Errorf("unknown cluster subcommand %q (want status, join, leave, drain)", op)
	}
}

func clusterGet(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	return decodeClusterResponse(resp, v)
}

func clusterPost(client *http.Client, url string, body, v any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	return decodeClusterResponse(resp, v)
}

func decodeClusterResponse(resp *http.Response, v any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	return json.Unmarshal(raw, v)
}

func printClusterStatus(out io.Writer, st *cluster.ClusterStatus) error {
	fmt.Fprintf(out, "ring epoch %d, label generation %d, n=%d vertices, replication %d\n",
		st.Epoch, st.Generation, st.NumVertices, st.Replication)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	header := "SHARD\tADDR\tHEALTHY\tBREAKER\tGEN\tLABELS\tFLAGS"
	if st.Live != nil {
		header = "SHARD\tADDR\tHEALTHY\tBREAKER\tGEN\tLABELS\tPENDING\tFLAGS"
	}
	fmt.Fprintln(tw, header)
	for _, sh := range st.Shards {
		up := "up"
		if !sh.Healthy {
			up = "DOWN"
		}
		var flags []string
		if sh.Mismatched {
			flags = append(flags, "mismatched")
		}
		if sh.Draining {
			flags = append(flags, "draining")
		}
		if sh.NonAuthoritative {
			flags = append(flags, "non-authoritative")
		}
		if sh.GenLagged {
			flags = append(flags, "gen-lagged")
		}
		if st.Live != nil {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%d\t%d\t%s\n",
				sh.Name, sh.Addr, up, sh.Breaker, sh.Generation, sh.Labels, sh.PendingDelta, strings.Join(flags, ","))
		} else {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%d\t%s\n",
				sh.Name, sh.Addr, up, sh.Breaker, sh.Generation, sh.Labels, strings.Join(flags, ","))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if st.Live != nil {
		fmt.Fprintf(out, "live: %d pending delta edges, %d sealed WAL segments", st.Live.PendingEdges, st.Live.WALSegments)
		if st.Live.WALOldestAgeSec > 0 {
			fmt.Fprintf(out, " (oldest %s)", (time.Duration(st.Live.WALOldestAgeSec*float64(time.Second))).Round(time.Second))
		}
		fmt.Fprintln(out)
	}
	if st.Repair.Enabled {
		fmt.Fprintf(out, "repair: converged=%v sweeps=%d repaired=%d backlog=%d hints=%d sealed=%d\n",
			st.Repair.Converged, st.Repair.Sweeps, st.Repair.Repaired,
			st.Repair.Backlog, st.Repair.Hints, st.Repair.Sealed)
		if st.Repair.LastError != "" {
			fmt.Fprintf(out, "repair: last error: %s\n", st.Repair.LastError)
		}
	} else {
		fmt.Fprintln(out, "repair: disabled")
	}
	if st.RetryBudget.Enabled {
		fmt.Fprintf(out, "retry budget: %.1f tokens, spent %d, denied %d\n",
			st.RetryBudget.Tokens, st.RetryBudget.Spent, st.RetryBudget.Denied)
	} else {
		fmt.Fprintln(out, "retry budget: disabled")
	}
	return nil
}
