package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"fsdl/internal/labelstore"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func genGraphFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	if _, err := runCLI(t, "gen", "-kind", "grid", "-size", "6", "-out", path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIMissingSubcommand(t *testing.T) {
	if _, err := runCLI(t); err == nil {
		t.Error("no subcommand must error")
	}
	if _, err := runCLI(t, "bogus"); err == nil {
		t.Error("unknown subcommand must error")
	}
}

func TestCLIGenAllKinds(t *testing.T) {
	for _, kind := range []string{"grid", "path", "cycle", "rgg", "road", "tree"} {
		out, err := runCLI(t, "gen", "-kind", kind, "-size", "8")
		if err != nil {
			t.Fatalf("gen %s: %v", kind, err)
		}
		if len(out) == 0 {
			t.Fatalf("gen %s produced no output", kind)
		}
	}
	if _, err := runCLI(t, "gen", "-kind", "nope"); err == nil {
		t.Error("unknown kind must error")
	}
}

func TestCLIStats(t *testing.T) {
	path := genGraphFile(t)
	out, err := runCLI(t, "stats", "-in", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"n=36", "doubling dimension", "label bits"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestCLILabel(t *testing.T) {
	path := genGraphFile(t)
	out, err := runCLI(t, "label", "-in", path, "-v", "7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "label of 7") {
		t.Errorf("label output wrong:\n%s", out)
	}
	if _, err := runCLI(t, "label", "-in", path, "-v", "99"); err == nil {
		t.Error("out-of-range vertex must error")
	}
}

func TestCLIQuery(t *testing.T) {
	path := genGraphFile(t)
	out, err := runCLI(t, "query", "-in", path, "-s", "0", "-t", "35", "-fail", "7,14")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "estimated distance") {
		t.Errorf("query output wrong:\n%s", out)
	}
	// Sealed corner reports disconnection.
	out, err = runCLI(t, "query", "-in", path, "-s", "0", "-t", "35", "-fail", "1,6")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DISCONNECTED") {
		t.Errorf("expected disconnection report:\n%s", out)
	}
	if _, err := runCLI(t, "query", "-in", path, "-fail", "xyz"); err == nil {
		t.Error("bad fault list must error")
	}
	if _, err := runCLI(t, "query", "-in", path, "-failedge", "1"); err == nil {
		t.Error("bad edge fault must error")
	}
}

func TestCLIRoute(t *testing.T) {
	path := genGraphFile(t)
	out, err := runCLI(t, "route", "-in", path, "-s", "0", "-t", "35", "-fail", "14")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "route 0 -> 35") {
		t.Errorf("route output wrong:\n%s", out)
	}
}

func TestCLIVerify(t *testing.T) {
	path := genGraphFile(t)
	out, err := runCLI(t, "verify", "-in", path, "-queries", "100")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "all guarantees hold") {
		t.Errorf("verify output wrong:\n%s", out)
	}
}

func TestCLILabelsAndQueryDB(t *testing.T) {
	gpath := genGraphFile(t)
	dbPath := filepath.Join(t.TempDir(), "labels.fsdl")
	if _, err := runCLI(t, "labels", "-in", gpath, "-out", dbPath); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dbPath); err != nil {
		t.Fatal("label store not written")
	}
	out, err := runCLI(t, "querydb", "-db", dbPath, "-s", "0", "-t", "35", "-fail", "7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "answered offline") {
		t.Errorf("querydb output wrong:\n%s", out)
	}
	// Region bundle: out-of-region queries error.
	regPath := filepath.Join(t.TempDir(), "region.fsdl")
	if _, err := runCLI(t, "labels", "-in", gpath, "-out", regPath, "-region", "14", "-radius", "2"); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "querydb", "-db", regPath, "-s", "0", "-t", "35"); err == nil {
		t.Error("out-of-region query must error")
	}
}

func TestCLIQueryDBPath(t *testing.T) {
	gpath := genGraphFile(t)
	dbPath := filepath.Join(t.TempDir(), "labels.fsdl")
	if _, err := runCLI(t, "labels", "-in", gpath, "-out", dbPath); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "querydb", "-db", dbPath, "-s", "0", "-t", "35", "-fail", "7", "-path")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "path (") || !strings.Contains(out, " 0 ->") || !strings.Contains(out, "-> 35") {
		t.Errorf("querydb -path output missing witness walk:\n%s", out)
	}
	// The walk must also come back in salvage mode.
	out, err = runCLI(t, "querydb", "-db", dbPath, "-s", "0", "-t", "35", "-fail", "7", "-salvage", "-path")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "path (") || !strings.Contains(out, "-> 35") {
		t.Errorf("querydb -salvage -path output missing witness walk:\n%s", out)
	}
}

func TestCLIQueryDBSalvage(t *testing.T) {
	gpath := genGraphFile(t)
	dbPath := filepath.Join(t.TempDir(), "labels.fsdl")
	if _, err := runCLI(t, "labels", "-in", gpath, "-out", dbPath); err != nil {
		t.Fatal(err)
	}
	// -salvage on an intact store answers in exact mode, no salvage banner.
	out, err := runCLI(t, "querydb", "-db", dbPath, "-s", "0", "-t", "35", "-fail", "7", "-salvage")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "status: EXACT") || strings.Contains(out, "salvage:") {
		t.Errorf("intact-store salvage output wrong:\n%s", out)
	}
	// Corrupt one byte mid-file: strict load fails whole, salvage answers.
	data, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x20
	if err := os.WriteFile(dbPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "querydb", "-db", dbPath, "-s", "0", "-t", "35", "-fail", "7"); err == nil {
		t.Error("strict querydb must fail on a corrupt store")
	}
	out, err = runCLI(t, "querydb", "-db", dbPath, "-s", "0", "-t", "35", "-fail", "7", "-salvage")
	if err != nil {
		t.Fatalf("salvage querydb failed: %v", err)
	}
	if !strings.Contains(out, "salvage: kept") {
		t.Errorf("missing salvage banner:\n%s", out)
	}
	if !strings.Contains(out, "estimated distance") && !strings.Contains(out, "no answer") {
		t.Errorf("salvage query produced no verdict:\n%s", out)
	}
	if strings.Contains(out, "estimated distance") && !strings.Contains(out, "status: ") {
		t.Errorf("salvage verdict missing status line:\n%s", out)
	}
}

func TestCLIQueryDBSalvageUnreadableStore(t *testing.T) {
	gpath := genGraphFile(t)
	dbPath := filepath.Join(t.TempDir(), "labels.fsdl")
	if _, err := runCLI(t, "labels", "-in", gpath, "-out", dbPath); err != nil {
		t.Fatal(err)
	}
	// Truncate to just the header: the count still promises records but
	// none can be salvaged. Even -salvage must exit non-zero, not report
	// success over an empty store.
	data, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dbPath, data[:7], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = runCLI(t, "querydb", "-db", dbPath, "-s", "0", "-t", "35", "-salvage")
	if err == nil {
		t.Fatal("querydb -salvage must fail when zero records are salvaged")
	}
	if !strings.Contains(err.Error(), "unreadable") {
		t.Errorf("error should say the store is unreadable, got: %v", err)
	}
}

func TestCLITrace(t *testing.T) {
	out, err := runCLI(t, "trace", "-size", "7", "-fail", "24")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"estimate", "S", "T", "X", "waypoints"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIReadsStdinFallbackError(t *testing.T) {
	// Missing file errors cleanly.
	if _, err := runCLI(t, "stats", "-in", "/nonexistent/file.txt"); err == nil {
		t.Error("missing input file must error")
	}
}

func TestCLIBuildSchemeAndQueryScheme(t *testing.T) {
	gpath := genGraphFile(t)
	spath := filepath.Join(t.TempDir(), "s.fsdls")
	out, err := runCLI(t, "buildscheme", "-in", gpath, "-out", spath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "preprocessed scheme") {
		t.Errorf("buildscheme output wrong:\n%s", out)
	}
	out, err = runCLI(t, "query", "-scheme", spath, "-s", "0", "-t", "35", "-fail", "7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "estimated distance") {
		t.Errorf("scheme-backed query wrong:\n%s", out)
	}
	if _, err := runCLI(t, "query", "-scheme", "/nonexistent.fsdls", "-s", "0", "-t", "1"); err == nil {
		t.Error("missing scheme file must error")
	}
}

func TestCLIWQuery(t *testing.T) {
	grPath := filepath.Join(t.TempDir(), "mini.gr")
	gr := "c test\np sp 4 6\na 1 2 3\na 2 3 5\na 3 4 2\na 4 1 7\na 1 3 1\na 2 4 9\n"
	if err := os.WriteFile(grPath, []byte(gr), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "wquery", "-in", grPath, "-s", "0", "-t", "3", "-fail", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "estimated travel cost") {
		t.Errorf("wquery output wrong:\n%s", out)
	}
	// Disconnect junction 3 entirely: faults on all its neighbors.
	out, err = runCLI(t, "wquery", "-in", grPath, "-s", "0", "-t", "3", "-fail", "1,2", "-failedge", "0-3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DISCONNECTED") {
		t.Errorf("expected disconnection:\n%s", out)
	}
	if _, err := runCLI(t, "wquery", "-in", "/nonexistent.gr"); err == nil {
		t.Error("missing file must error")
	}
}

// TestCLIPartitionRoundTrip: `fsdl partition` splits a store into
// per-shard stores whose union re-serves every label byte-identically
// with the original (satellite acceptance check for the cluster
// pipeline).
func TestCLIPartitionRoundTrip(t *testing.T) {
	gpath := genGraphFile(t)
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "labels.fsdl")
	if _, err := runCLI(t, "labels", "-in", gpath, "-out", dbPath); err != nil {
		t.Fatal(err)
	}
	members := filepath.Join(dir, "members.txt")
	if err := os.WriteFile(members, []byte("replication 2\nshard0 127.0.0.1:9000\nshard1 127.0.0.1:9001\nshard2 127.0.0.1:9002\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(dir, "shards")
	out, err := runCLI(t, "partition", "-db", dbPath, "-members", members, "-out", shardDir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "into 3 shards (replication 2)") {
		t.Fatalf("partition summary missing: %s", out)
	}

	orig := loadStoreFile(t, dbPath)
	// Union of partitions must hold every original record with the very
	// same bytes (and, with replication 2, each exactly twice).
	copies := make(map[int]int)
	for i := 0; i < 3; i++ {
		ps := loadStoreFile(t, filepath.Join(shardDir, "shard"+strconv.Itoa(i)+".fsdl"))
		if ps.NumVertices() != orig.NumVertices() {
			t.Fatalf("shard %d declares n=%d, want %d", i, ps.NumVertices(), orig.NumVertices())
		}
		for _, v := range ps.Vertices() {
			wantBits, wantData, ok := orig.Raw(v)
			if !ok {
				t.Fatalf("shard %d holds vertex %d the original lacks", i, v)
			}
			gotBits, gotData, _ := ps.Raw(v)
			if gotBits != wantBits || !bytes.Equal(gotData, wantData) {
				t.Fatalf("label bytes for vertex %d differ after partitioning", v)
			}
			copies[v]++
		}
	}
	for _, v := range orig.Vertices() {
		if copies[v] != 2 {
			t.Fatalf("vertex %d held by %d shards, want replication 2", v, copies[v])
		}
	}
	// And a single-vertex sanity query through one partition must agree
	// with the original store byte-for-byte implies answer-for-answer;
	// cross-check via querydb on the original.
	if _, err := runCLI(t, "querydb", "-db", dbPath, "-s", "0", "-t", "35"); err != nil {
		t.Fatal(err)
	}

	if _, err := runCLI(t, "partition", "-db", dbPath, "-members", filepath.Join(dir, "missing.txt"), "-out", shardDir); err == nil {
		t.Fatal("partition with missing membership file must error")
	}
}

func loadStoreFile(t *testing.T, path string) *labelstore.Store {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := labelstore.Load(f)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	return st
}

// TestCLIFormat3Pipeline: `fsdl labels -format fsdl3 -compress` →
// `fsdl stats <store>` → `fsdl partition -format fsdl3` → `fsdl
// querydb -mmap` — the FSDL3 path end to end through the CLI.
func TestCLIFormat3Pipeline(t *testing.T) {
	dir := t.TempDir()
	// Big enough that the FSDL3 page-aligned header+index (8 KiB floor)
	// stops masking the payload compression.
	gpath := filepath.Join(dir, "g.txt")
	if _, err := runCLI(t, "gen", "-kind", "grid", "-size", "16", "-out", gpath); err != nil {
		t.Fatal(err)
	}
	dbPath := filepath.Join(dir, "labels.fsdl")
	db3Path := filepath.Join(dir, "labels3.fsdl")
	if _, err := runCLI(t, "labels", "-in", gpath, "-out", dbPath); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "labels", "-in", gpath, "-out", db3Path, "-format", "fsdl3", "-compress"); err != nil {
		t.Fatal(err)
	}
	fi2, err := os.Stat(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	fi3, err := os.Stat(db3Path)
	if err != nil {
		t.Fatal(err)
	}
	if fi3.Size() >= fi2.Size() {
		t.Fatalf("compressed FSDL3 store (%d bytes) not smaller than FSDL2 (%d bytes)", fi3.Size(), fi2.Size())
	}

	// Store-mode stats reports the container and the histogram.
	out, err := runCLI(t, "stats", db3Path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FSDL3 compressed", "bytes/vertex", "index/framing overhead", "record size histogram"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
	if out2, err := runCLI(t, "stats", dbPath); err != nil || !strings.Contains(out2, "FSDL2") {
		t.Fatalf("stats on FSDL2 store: %v\n%s", err, out2)
	}

	// Same answers from both containers, mmap'd or not.
	q := func(db string, extra ...string) string {
		t.Helper()
		args := append([]string{"querydb", "-db", db, "-s", "0", "-t", "35", "-fail", "7,8"}, extra...)
		out, err := runCLI(t, args...)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if want, got := q(dbPath), q(db3Path, "-mmap"); want != got {
		t.Fatalf("querydb answers differ across containers:\n%s\nvs\n%s", want, got)
	}

	// FSDL3 partitions round-trip the same record bytes.
	members := filepath.Join(dir, "members.txt")
	if err := os.WriteFile(members, []byte("replication 1\nshard0 127.0.0.1:9000\nshard1 127.0.0.1:9001\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(dir, "shards")
	if _, err := runCLI(t, "partition", "-db", db3Path, "-members", members, "-out", shardDir, "-format", "fsdl3", "-compress"); err != nil {
		t.Fatal(err)
	}
	orig := loadStoreFile(t, dbPath)
	for i := 0; i < 2; i++ {
		path := filepath.Join(shardDir, "shard"+strconv.Itoa(i)+".fsdl")
		ps, err := labelstore.Open(path)
		if err != nil {
			t.Fatalf("open partition %s: %v", path, err)
		}
		if ps.Format() != 3 || !ps.Compressed() {
			t.Fatalf("partition %s: format=%d compressed=%v, want compressed FSDL3", path, ps.Format(), ps.Compressed())
		}
		for _, v := range ps.Vertices() {
			wantBits, wantData, ok := orig.Raw(v)
			gotBits, gotData, _ := ps.Raw(v)
			if !ok || gotBits != wantBits || !bytes.Equal(gotData, wantData) {
				t.Fatalf("label bytes for vertex %d differ through the FSDL3 partition", v)
			}
		}
	}

	// Guard rails: -compress without fsdl3, and -region with fsdl3.
	if _, err := runCLI(t, "labels", "-in", gpath, "-out", db3Path, "-compress"); err == nil {
		t.Fatal("labels -compress without -format fsdl3 must error")
	}
	if _, err := runCLI(t, "labels", "-in", gpath, "-out", db3Path, "-format", "fsdl3", "-region", "0"); err == nil {
		t.Fatal("labels -region with -format fsdl3 must error")
	}
}
