// Command fsdl is the interactive front end to the library: generate
// workload graphs, inspect labels, estimate doubling dimension, and answer
// forbidden-set distance queries.
//
// Usage:
//
//	fsdl gen   -kind grid -size 16 [-out graph.txt]
//	fsdl stats -in graph.txt [-eps 2]
//	fsdl stats labels.fsdl            (label store statistics; see docs/STORAGE.md)
//	fsdl label -in graph.txt -v 12 [-eps 2]
//	fsdl query -in graph.txt -s 0 -t 99 [-eps 2] [-fail 5,17] [-failedge 3-4]
//	fsdl route -in graph.txt -s 0 -t 99 [-eps 2] [-fail 5,17]
//	fsdl verify -in graph.txt [-eps 2] [-maxfaults 3]
//	fsdl labels -in graph.txt -out labels.fsdl [-region 12 -radius 5] [-workers N]
//	fsdl querydb -db labels.fsdl -s 0 -t 99 [-fail 5,17] [-salvage] [-path] [-mmap]
//	fsdl trace -size 12 -s 0 [-fail 60,61,62]
//	fsdl buildscheme -in graph.txt -out scheme.fsdls [-eps 2] [-workers N]
//	fsdl wquery -in roads.gr -s 0 -t 99 [-fail 5,17]
//	fsdl partition -db labels.fsdl -members members.txt -out shards/ [-format fsdl3 -compress]
//	fsdl cluster status|join|leave|drain -frontend http://host:8080 [...]
//	fsdl compact -root gens/ [-wal gens/mutations.wal] [-in graph.txt] [-members members.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"fsdl"
	"fsdl/internal/asciiviz"
	"fsdl/internal/cluster"
	graphpkg "fsdl/internal/graph"
	"fsdl/internal/labelstore"
	"fsdl/internal/verify"
	"fsdl/internal/wgraph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fsdl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (gen, stats, label, query, route)")
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:], out)
	case "stats":
		return cmdStats(args[1:], out)
	case "label":
		return cmdLabel(args[1:], out)
	case "query":
		return cmdQuery(args[1:], out)
	case "route":
		return cmdRoute(args[1:], out)
	case "verify":
		return cmdVerify(args[1:], out)
	case "labels":
		return cmdLabels(args[1:], out)
	case "querydb":
		return cmdQueryDB(args[1:], out)
	case "trace":
		return cmdTrace(args[1:], out)
	case "buildscheme":
		return cmdBuildScheme(args[1:], out)
	case "wquery":
		return cmdWQuery(args[1:], out)
	case "partition":
		return cmdPartition(args[1:], out)
	case "cluster":
		return cmdCluster(args[1:], out)
	case "compact":
		return cmdCompact(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func cmdTrace(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	size := fs.Int("size", 12, "grid side length (the trace view requires a grid)")
	eps := fs.Float64("eps", 2, "precision parameter epsilon")
	src := fs.Int("s", 0, "source vertex")
	dst := fs.Int("t", -1, "target vertex (-1 = opposite corner)")
	failList := fs.String("fail", "", "comma-separated failed vertices")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g := fsdl.GridGraph2D(*size, *size)
	if *dst < 0 {
		*dst = g.NumVertices() - 1
	}
	s, err := fsdl.Build(g, *eps)
	if err != nil {
		return err
	}
	faults, err := parseFaults(*failList, "")
	if err != nil {
		return err
	}
	q, err := s.NewQuery(*src, *dst, faults)
	if err != nil {
		return err
	}
	var tr fsdl.Trace
	d, ok := q.DistanceWithTrace(&tr)
	if !ok {
		fmt.Fprintf(out, "%d and %d are DISCONNECTED in G \\ F\n", *src, *dst)
		return nil
	}
	fmt.Fprintf(out, "estimate %d (sketch: %d vertices, %d edges)\n", d, tr.NumHVertices, tr.NumHEdges)
	// Walk the waypoints into an actual grid path for the picture.
	r, okRoute := fsdl.BuildRouting(s).RouteWithFaults(*src, *dst, faults)
	var path []int
	if okRoute {
		path = r.Path
	}
	pic, err := asciiviz.RenderQuery(*size, *size, *src, *dst, faults.Vertices(), tr.Path, path)
	if err != nil {
		return err
	}
	fmt.Fprint(out, pic)
	fmt.Fprintln(out, "waypoints with weights:")
	for i := 1; i < len(tr.Path); i++ {
		fmt.Fprintf(out, "  %d -> %d (weight %d)\n", tr.Path[i-1], tr.Path[i], tr.PathWeights[i-1])
	}
	return nil
}

func cmdLabels(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("labels", flag.ContinueOnError)
	in := fs.String("in", "", "graph file (text format; default stdin)")
	eps := fs.Float64("eps", 2, "precision parameter epsilon")
	outPath := fs.String("out", "labels.fsdl", "output label store")
	region := fs.Int("region", -1, "center vertex of a region bundle (-1 = all labels)")
	radius := fs.Int("radius", 0, "region radius (with -region)")
	workers := fs.Int("workers", 0, "preprocessing workers (0 = all CPUs; output is identical for any count)")
	format := fs.String("format", "fsdl2", "label container: fsdl2 (heap stream) or fsdl3 (mmap-first, see docs/STORAGE.md)")
	compress := fs.Bool("compress", false, "compress FSDL3 record payloads (requires -format fsdl3)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	format3, err := parseFormat(*format, *compress)
	if err != nil {
		return err
	}
	if format3 && *region >= 0 {
		return fmt.Errorf("-region bundles are FSDL2-only")
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	s, err := fsdl.BuildWithWorkers(g, *eps, *workers)
	if err != nil {
		return err
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case *region >= 0:
		err = labelstore.SaveRegion(f, s, *region, int32(*radius))
	case format3:
		err = labelstore.SaveFormat3(f, s, nil, *compress)
	default:
		err = labelstore.Save(f, s, nil)
	}
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d bytes)\n", *outPath, info.Size())
	return nil
}

func cmdQueryDB(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("querydb", flag.ContinueOnError)
	db := fs.String("db", "labels.fsdl", "label store file")
	src := fs.Int("s", 0, "source vertex")
	dst := fs.Int("t", 0, "target vertex")
	failList := fs.String("fail", "", "comma-separated failed vertices")
	failEdges := fs.String("failedge", "", "comma-separated failed edges as u-v")
	salvage := fs.Bool("salvage", false, "tolerate a damaged store: skip corrupt records and answer conservatively (safe upper bounds)")
	withPath := fs.Bool("path", false, "also print the witness path (a walk in G \\ F realizing the answer)")
	mmap := fs.Bool("mmap", false, "serve an FSDL3 store from the page cache (mmap) instead of loading it into heap")
	if err := fs.Parse(args); err != nil {
		return err
	}
	faults, err := parseFaults(*failList, *failEdges)
	if err != nil {
		return err
	}
	if *salvage {
		st, rep, err := labelstore.OpenPartial(*db)
		if err != nil {
			return err
		}
		if rep.Kept == 0 {
			return fmt.Errorf("store %s is unreadable: 0 of %d records salvaged (truncated: %v)",
				*db, rep.Total, rep.Truncated)
		}
		if rep.Lost() > 0 {
			fmt.Fprintf(out, "salvage: kept %d/%d records (%d corrupt, truncated: %v)\n",
				rep.Kept, rep.Total, len(rep.Corrupt), rep.Truncated)
		}
		res, path, err := st.DistanceRobustPath(*src, *dst, faults, 0)
		if err != nil {
			return err
		}
		if !res.OK {
			fmt.Fprintf(out, "no answer for %d -> %d avoiding |F|=%d (disconnected, or endpoints unrecoverable)\n",
				*src, *dst, faults.Size())
			return nil
		}
		fmt.Fprintf(out, "estimated distance %d -> %d avoiding |F|=%d: %d (from %d stored labels)\n",
			*src, *dst, faults.Size(), res.Dist, st.NumLabels())
		if res.Degraded {
			fmt.Fprintf(out, "status: DEGRADED upper bound (%d fault labels missing/corrupt)\n",
				len(res.MissingFaultLabels))
		} else {
			fmt.Fprintln(out, "status: EXACT (all labels intact, (1+eps) estimate)")
		}
		if *withPath {
			printPath(out, path)
		}
		return nil
	}
	open := labelstore.OpenHeap
	if *mmap {
		open = labelstore.Open
	}
	st, err := open(*db)
	if err != nil {
		return err
	}
	d, ok, err := st.Distance(*src, *dst, faults)
	if err != nil {
		return err
	}
	if !ok {
		fmt.Fprintf(out, "%d and %d are DISCONNECTED in G \\ F (|F|=%d)\n", *src, *dst, faults.Size())
		return nil
	}
	fmt.Fprintf(out, "estimated distance %d -> %d avoiding |F|=%d: %d (answered offline from %d stored labels)\n",
		*src, *dst, faults.Size(), d, st.NumLabels())
	if *withPath {
		// Re-decode with path reporting: same labels, same answer, plus
		// the witness walk.
		if _, path, err := st.DistanceRobustPath(*src, *dst, faults, 0); err == nil {
			printPath(out, path)
		}
	}
	return nil
}

// printPath renders a witness walk as "path: a -> b -> c". Hops are
// sketch edges: each is realizable in G \ F at exactly the weight it
// contributed, so consecutive vertices need not be graph-adjacent.
func printPath(out io.Writer, path []int32) {
	if len(path) == 0 {
		return
	}
	fmt.Fprintf(out, "path (%d hops):", len(path)-1)
	for i, v := range path {
		if i == 0 {
			fmt.Fprintf(out, " %d", v)
		} else {
			fmt.Fprintf(out, " -> %d", v)
		}
	}
	fmt.Fprintln(out)
}

func cmdVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	in := fs.String("in", "", "graph file (text format; default stdin)")
	eps := fs.Float64("eps", 2, "precision parameter epsilon")
	maxFaults := fs.Int("maxfaults", 3, "largest fault set to exercise")
	queries := fs.Int("queries", 1500, "query budget")
	withRouting := fs.Bool("routing", true, "also verify routing")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	rep, err := verify.Scheme(g, verify.Options{
		Epsilon:      *eps,
		MaxFaults:    *maxFaults,
		MaxQueries:   *queries,
		CheckRouting: *withRouting,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "verified %d queries (%d routed) against exact recomputation\n", rep.Queries, rep.Routes)
	if rep.OK() {
		fmt.Fprintln(out, "all guarantees hold: no safety, connectivity, stretch, or routing violations")
		return nil
	}
	for _, v := range rep.Violations {
		fmt.Fprintln(out, " VIOLATION:", v)
	}
	return fmt.Errorf("%d violations found", len(rep.Violations))
}

func cmdGen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	kind := fs.String("kind", "grid", "graph family: grid, path, cycle, rgg, road, tree")
	size := fs.Int("size", 16, "side length (grid/road) or vertex count (path/cycle/rgg/tree)")
	seed := fs.Int64("seed", 1, "random seed for random families")
	outPath := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var g *fsdl.Graph
	var err error
	switch *kind {
	case "grid":
		g = fsdl.GridGraph2D(*size, *size)
	case "path":
		g = fsdl.PathGraph(*size)
	case "cycle":
		g, err = fsdl.CycleGraph(*size)
	case "rgg":
		g, _, err = fsdl.RandomGeometricGraph(*size, 1.5/float64(*size)*float64(*size/24+8), rng)
	case "road":
		g, err = fsdl.RoadNetworkGraph(*size, *size, 0.12, *size/2, rng)
	case "tree":
		g = fsdl.RandomTreeGraph(*size, rng)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err = g.WriteTo(w)
	return err
}

func cmdStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	in := fs.String("in", "", "graph file (text format; default stdin)")
	eps := fs.Float64("eps", 2, "precision parameter epsilon")
	seed := fs.Int64("seed", 1, "random seed for sampling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// `fsdl stats <store>`: container-level statistics of a label store
	// file instead of graph/scheme statistics.
	if fs.NArg() > 0 {
		return storeStats(fs.Arg(0), out)
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	est := fsdl.EstimateDoublingDimension(g, 8, rng)
	fmt.Fprintf(out, "n=%d m=%d connected=%v diameter=%d\n",
		g.NumVertices(), g.NumEdges(), g.IsConnected(), g.Diameter())
	fmt.Fprintf(out, "doubling dimension (empirical): %.2f (max greedy cover %d over %d samples)\n",
		est.Dimension, est.MaxCover, est.Samples)
	s, err := fsdl.Build(g, *eps)
	if err != nil {
		return err
	}
	p := s.Params()
	fmt.Fprintf(out, "scheme: eps=%g c=%d levels %d..%d\n", p.Epsilon, p.C, p.LowestLevel(), p.MaxLevel)
	var totalBits, maxBits int
	samples := 8
	if g.NumVertices() < samples {
		samples = g.NumVertices()
	}
	for i := 0; i < samples; i++ {
		v := rng.Intn(g.NumVertices())
		b := s.LabelBits(v)
		totalBits += b
		if b > maxBits {
			maxBits = b
		}
	}
	if samples > 0 {
		fmt.Fprintf(out, "label bits: avg %d, max %d (over %d sampled vertices)\n",
			totalBits/samples, maxBits, samples)
	}
	st := s.StoreStats()
	fmt.Fprintf(out, "level store: %d levels, %d net edges total\n", len(st.Levels), st.TotalNetEdges)
	for _, ls := range st.Levels {
		fmt.Fprintf(out, "  level %2d: %6d net points, %8d net edges\n", ls.Level, ls.NetPoints, ls.NetEdges)
	}
	return nil
}

// storeStats prints container-level statistics of a label store file:
// the format and encoding, stored vs canonical payload bytes, bytes per
// vertex, index/framing overhead, and a per-record size histogram. The
// store is opened mmap-first, so statting a store much larger than RAM
// streams through the page cache instead of loading it.
func storeStats(path string, out io.Writer) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	st, err := labelstore.Open(path)
	if err != nil {
		return err
	}
	defer st.Close()
	desc := "FSDL" + strconv.Itoa(st.Format())
	if st.Compressed() {
		desc += " compressed"
	}
	if st.Mapped() {
		desc += ", mmap"
	}
	var (
		records, corrupt    int
		stored, canonical   int64
		hist                [33]int // bucket i: stored size in [2^i, 2^(i+1))
		maxBucket, maxCount int
	)
	st.Records(func(r labelstore.RecordInfo) {
		records++
		if r.Corrupt {
			corrupt++
		}
		stored += int64(r.StoredBytes)
		canonical += int64((r.Bits + 7) / 8)
		b := bits.Len(uint(r.StoredBytes))
		hist[b]++
		if b > maxBucket {
			maxBucket = b
		}
		if hist[b] > maxCount {
			maxCount = hist[b]
		}
	})
	n := st.NumVertices()
	fmt.Fprintf(out, "store %s: %s, n=%d vertices, %d records, %d bytes on disk\n",
		path, desc, n, records, fi.Size())
	saved := ""
	if st.Compressed() && canonical > 0 {
		saved = fmt.Sprintf(" (%.1f%% smaller than canonical)", 100*(1-float64(stored)/float64(canonical)))
	}
	fmt.Fprintf(out, "payload: %d stored bytes, %d canonical bytes%s\n", stored, canonical, saved)
	fmt.Fprintf(out, "index/framing overhead: %d bytes (%.1f%% of file)\n",
		st.IndexOverheadBytes(), 100*float64(st.IndexOverheadBytes())/float64(fi.Size()))
	if n > 0 {
		fmt.Fprintf(out, "bytes/vertex: %.1f on disk, %.1f payload\n",
			float64(fi.Size())/float64(n), float64(stored)/float64(n))
	}
	if corrupt > 0 {
		fmt.Fprintf(out, "corrupt records: %d (served as unknown; repair with Put or re-fetch)\n", corrupt)
	}
	fmt.Fprintln(out, "record size histogram (stored bytes):")
	for b := 0; b <= maxBucket; b++ {
		if hist[b] == 0 {
			continue
		}
		lo, hi := 0, 0
		if b > 0 {
			lo, hi = 1<<(b-1), 1<<b-1
		}
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", 1+hist[b]*40/maxCount)
		}
		fmt.Fprintf(out, "  %7d..%-7d %7d %s\n", lo, hi, hist[b], bar)
	}
	return nil
}

// parseFormat maps a -format flag value onto the container choice and
// checks the -compress pairing.
func parseFormat(format string, compress bool) (format3 bool, err error) {
	switch format {
	case "", "fsdl2", "2":
		if compress {
			return false, fmt.Errorf("-compress requires -format fsdl3")
		}
		return false, nil
	case "fsdl3", "3":
		return true, nil
	}
	return false, fmt.Errorf("unknown container format %q (want fsdl2 or fsdl3)", format)
}

func cmdLabel(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("label", flag.ContinueOnError)
	in := fs.String("in", "", "graph file (text format; default stdin)")
	eps := fs.Float64("eps", 2, "precision parameter epsilon")
	v := fs.Int("v", 0, "vertex to label")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	s, err := fsdl.Build(g, *eps)
	if err != nil {
		return err
	}
	if *v < 0 || *v >= g.NumVertices() {
		return fmt.Errorf("vertex %d out of range [0,%d)", *v, g.NumVertices())
	}
	l := s.Label(*v)
	_, bits := l.Encode()
	fmt.Fprintf(out, "label of %d: %d bits, %d points, %d edges, %d levels\n",
		*v, bits, l.NumPoints(), l.NumEdges(), len(l.Levels))
	for k, lv := range l.Levels {
		fmt.Fprintf(out, "  level %d: %d points, %d edges\n", l.Level(k), len(lv.Points), len(lv.Edges))
	}
	return nil
}

func cmdQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	in := fs.String("in", "", "graph file (text format; default stdin)")
	schemePath := fs.String("scheme", "", "persisted scheme file (skips preprocessing; overrides -in/-eps)")
	eps := fs.Float64("eps", 2, "precision parameter epsilon")
	src := fs.Int("s", 0, "source vertex")
	dst := fs.Int("t", 0, "target vertex")
	failList := fs.String("fail", "", "comma-separated failed vertices")
	failEdges := fs.String("failedge", "", "comma-separated failed edges as u-v")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var s *fsdl.Scheme
	if *schemePath != "" {
		f, err := os.Open(*schemePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if s, err = fsdl.LoadScheme(f); err != nil {
			return err
		}
	} else {
		g, err := loadGraph(*in)
		if err != nil {
			return err
		}
		if s, err = fsdl.Build(g, *eps); err != nil {
			return err
		}
	}
	f, err := parseFaults(*failList, *failEdges)
	if err != nil {
		return err
	}
	d, ok := s.Distance(*src, *dst, f)
	if !ok {
		fmt.Fprintf(out, "%d and %d are DISCONNECTED in G \\ F (|F|=%d)\n", *src, *dst, f.Size())
		return nil
	}
	fmt.Fprintf(out, "estimated distance %d -> %d avoiding |F|=%d: %d (stretch bound 1+%g)\n",
		*src, *dst, f.Size(), d, s.Params().Epsilon)
	return nil
}

func cmdBuildScheme(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("buildscheme", flag.ContinueOnError)
	in := fs.String("in", "", "graph file (text format; default stdin)")
	eps := fs.Float64("eps", 2, "precision parameter epsilon")
	outPath := fs.String("out", "scheme.fsdls", "output scheme file")
	workers := fs.Int("workers", 0, "preprocessing workers (0 = all CPUs; output is identical for any count)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	s, err := fsdl.BuildWithWorkers(g, *eps, *workers)
	if err != nil {
		return err
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fsdl.SaveScheme(f, s); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d bytes): preprocessed scheme for n=%d, eps=%g\n",
		*outPath, info.Size(), g.NumVertices(), *eps)
	return nil
}

func cmdRoute(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	in := fs.String("in", "", "graph file (text format; default stdin)")
	eps := fs.Float64("eps", 2, "precision parameter epsilon")
	src := fs.Int("s", 0, "source vertex")
	dst := fs.Int("t", 0, "target vertex")
	failList := fs.String("fail", "", "comma-separated failed vertices")
	failEdges := fs.String("failedge", "", "comma-separated failed edges as u-v")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	s, err := fsdl.Build(g, *eps)
	if err != nil {
		return err
	}
	f, err := parseFaults(*failList, *failEdges)
	if err != nil {
		return err
	}
	r, ok := fsdl.BuildRouting(s).RouteWithFaults(*src, *dst, f)
	if !ok {
		fmt.Fprintf(out, "no route from %d to %d avoiding |F|=%d\n", *src, *dst, f.Size())
		return nil
	}
	fmt.Fprintf(out, "route %d -> %d: %d hops via %d waypoints\npath: %v\n",
		*src, *dst, r.Length, len(r.Waypoints), r.Path)
	return nil
}

func loadGraph(path string) (*fsdl.Graph, error) {
	if path == "" {
		return fsdl.ReadGraph(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fsdl.ReadGraph(f)
}

func parseFaults(vertexList, edgeList string) (*fsdl.FaultSet, error) {
	f := fsdl.NewFaultSet()
	if vertexList != "" {
		for _, tok := range strings.Split(vertexList, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return nil, fmt.Errorf("bad failed vertex %q: %w", tok, err)
			}
			f.AddVertex(v)
		}
	}
	if edgeList != "" {
		for _, tok := range strings.Split(edgeList, ",") {
			parts := strings.SplitN(strings.TrimSpace(tok), "-", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("bad failed edge %q (want u-v)", tok)
			}
			u, err := strconv.Atoi(parts[0])
			if err != nil {
				return nil, fmt.Errorf("bad failed edge %q: %w", tok, err)
			}
			v, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("bad failed edge %q: %w", tok, err)
			}
			f.AddEdge(u, v)
		}
	}
	return f, nil
}

func cmdWQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wquery", flag.ContinueOnError)
	in := fs.String("in", "", "weighted road network in DIMACS .gr format (default stdin)")
	eps := fs.Float64("eps", 2, "precision parameter epsilon")
	src := fs.Int("s", 0, "source vertex (0-indexed)")
	dst := fs.Int("t", 0, "target vertex (0-indexed)")
	failList := fs.String("fail", "", "comma-separated failed vertices")
	failEdges := fs.String("failedge", "", "comma-separated failed road segments as u-v")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	topo, weights, err := graphpkg.ReadDIMACS(r)
	if err != nil {
		return err
	}
	wg, err := wgraph.FromEdgeWeights(topo.NumVertices(), weights)
	if err != nil {
		return err
	}
	s, err := wgraph.BuildScheme(wg, *eps)
	if err != nil {
		return err
	}
	faults, err := parseFaults(*failList, *failEdges)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "road network: %d junctions, %d segments (subdivided to %d unit vertices)\n",
		wg.NumVertices(), wg.NumEdges(), s.SubdividedSize())
	d, ok := s.Distance(*src, *dst, faults)
	if !ok {
		fmt.Fprintf(out, "%d and %d are DISCONNECTED avoiding |F|=%d\n", *src, *dst, faults.Size())
		return nil
	}
	fmt.Fprintf(out, "estimated travel cost %d -> %d avoiding |F|=%d: %d (stretch bound 1+%g)\n",
		*src, *dst, faults.Size(), d, *eps)
	return nil
}

// cmdPartition splits a label store into one store per cluster shard by
// consistent-hash ring ownership. With replication R every label lands
// in exactly R partition files; the union of the partitions re-serves
// every record byte-identically (the partition writer is just
// SaveVertices over the ring's ownership lists).
func cmdPartition(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("partition", flag.ContinueOnError)
	db := fs.String("db", "labels.fsdl", "label store file to split")
	members := fs.String("members", "", "cluster membership file (required; see docs/CLUSTER.md)")
	outDir := fs.String("out", ".", "directory for the per-shard stores (<name>.fsdl)")
	format := fs.String("format", "fsdl2", "partition container: fsdl2 (heap stream) or fsdl3 (mmap-first)")
	compress := fs.Bool("compress", false, "compress FSDL3 record payloads (requires -format fsdl3)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	format3, err := parseFormat(*format, *compress)
	if err != nil {
		return err
	}
	if *members == "" {
		return fmt.Errorf("-members is required")
	}
	m, err := cluster.LoadMembership(*members)
	if err != nil {
		return err
	}
	st, err := labelstore.Open(*db)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	ring := m.Ring()
	parts := ring.Partition(st.NumVertices())
	for i, node := range m.Nodes {
		// The ownership list covers all of [0,n); a region-bundle store
		// only holds labels for some of it.
		ids := parts[i][:0]
		for _, v := range parts[i] {
			if st.Has(v) {
				ids = append(ids, v)
			}
		}
		path := *outDir + string(os.PathSeparator) + node.Name + ".fsdl"
		pf, err := os.Create(path)
		if err != nil {
			return err
		}
		if format3 {
			err = st.SaveVerticesFormat3(pf, ids, *compress)
		} else {
			err = st.SaveVertices(pf, ids)
		}
		if err != nil {
			pf.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := pf.Close(); err != nil {
			return err
		}
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: %d labels, %d bytes\n", path, len(ids), info.Size())
	}
	fmt.Fprintf(out, "partitioned %d labels over n=%d vertices into %d shards (replication %d)\n",
		st.NumLabels(), st.NumVertices(), len(m.Nodes), ring.Replication())
	return nil
}
