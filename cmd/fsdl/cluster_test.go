package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fsdl/internal/cluster"
)

// fakeFrontend is an httptest stand-in for fsdl-serve's /v1/cluster/*
// endpoints.
func fakeFrontend(t *testing.T, status cluster.ClusterStatus) (*httptest.Server, *[]string) {
	t.Helper()
	var calls []string
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(status)
	})
	for _, op := range []string{"join", "leave", "drain"} {
		op := op
		mux.HandleFunc("/v1/cluster/"+op, func(w http.ResponseWriter, r *http.Request) {
			var req map[string]any
			json.NewDecoder(r.Body).Decode(&req)
			b, _ := json.Marshal(req)
			calls = append(calls, op+":"+string(b))
			json.NewEncoder(w).Encode(map[string]uint64{"epoch": 7})
		})
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &calls
}

func TestCLIClusterStatus(t *testing.T) {
	ts, _ := fakeFrontend(t, cluster.ClusterStatus{
		Epoch:       3,
		NumVertices: 64,
		Replication: 2,
		Shards: []cluster.ShardHealth{
			{Name: "shard0", Addr: "127.0.0.1:9000", Healthy: true, Labels: 40, Breaker: "closed"},
			{Name: "shard1", Addr: "127.0.0.1:9001", Healthy: false, Labels: 40, Breaker: "open", Draining: true},
			{Name: "shard2", Addr: "127.0.0.1:9002", Healthy: true, Labels: 0, Breaker: "closed", NonAuthoritative: true},
		},
		Repair:      cluster.RepairStatus{Enabled: true, Sweeps: 5, Repaired: 40, Converged: true, Sealed: 1},
		RetryBudget: cluster.RetryBudgetStatus{Enabled: true, Tokens: 48.5, Spent: 12, Denied: 3},
	})
	out, err := runCLI(t, "cluster", "status", "-frontend", ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ring epoch 3", "replication 2",
		"shard0", "up", "closed",
		"shard1", "DOWN", "open", "draining",
		"shard2", "non-authoritative",
		"repair: converged=true", "sealed=1",
		"retry budget: 48.5 tokens, spent 12, denied 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("status output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIClusterMembershipOps(t *testing.T) {
	ts, calls := fakeFrontend(t, cluster.ClusterStatus{})

	out, err := runCLI(t, "cluster", "join", "-frontend", ts.URL, "-name", "shard3", "-addr", "127.0.0.1:9003")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ring epoch now 7") {
		t.Fatalf("join output: %s", out)
	}
	if _, err := runCLI(t, "cluster", "drain", "-frontend", ts.URL, "-name", "shard3"); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "cluster", "drain", "-frontend", ts.URL, "-name", "shard3", "-undrain"); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "cluster", "leave", "-frontend", ts.URL, "-name", "shard1"); err != nil {
		t.Fatal(err)
	}

	got := strings.Join(*calls, "\n")
	for _, want := range []string{
		`join:{"addr":"127.0.0.1:9003","name":"shard3"}`,
		`drain:{"drain":true,"name":"shard3"}`,
		`drain:{"drain":false,"name":"shard3"}`,
		`leave:{"name":"shard1"}`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("frontend calls missing %q:\n%s", want, got)
		}
	}

	// Validation happens client-side before any request.
	if _, err := runCLI(t, "cluster", "join", "-frontend", ts.URL, "-addr", "x"); err == nil {
		t.Fatal("join without -name must error")
	}
	if _, err := runCLI(t, "cluster", "join", "-frontend", ts.URL, "-name", "x"); err == nil {
		t.Fatal("join without -addr must error")
	}
	if _, err := runCLI(t, "cluster", "bogus", "-frontend", ts.URL); err == nil {
		t.Fatal("unknown subcommand must error")
	}
	if _, err := runCLI(t, "cluster"); err == nil {
		t.Fatal("missing subcommand must error")
	}
}

func TestCLIClusterErrorSurfaced(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "cluster: shard \"x\" is not a member"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	_, err := runCLI(t, "cluster", "leave", "-frontend", ts.URL, "-name", "x")
	if err == nil || !strings.Contains(err.Error(), "not a member") {
		t.Fatalf("server error not surfaced: %v", err)
	}
}
