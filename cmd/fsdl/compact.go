package main

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"

	"fsdl/internal/cluster"
	"fsdl/internal/core"
	graphpkg "fsdl/internal/graph"
	"fsdl/internal/labelstore"
	"fsdl/internal/liveupdate"
)

// cmdCompact is the offline compaction path: replay a mutation WAL
// over a base graph and bake the result into the next versioned label
// generation under -root, ready for fsdl-serve / fsdl-shard to load.
//
//	fsdl compact -root gens/ [-wal gens/mutations.wal] [-in graph.txt]
//	             [-eps 2] [-workers N] [-members members.txt] [-force]
//	             [-format fsdl3] [-compress]
//
// The base graph comes from the newest generation already in -root
// (its graph.txt snapshot); -in seeds the very first compaction, when
// no generation exists yet. With -members, one partition file per
// shard is written into the generation so a cluster can activate it
// without re-partitioning.
func cmdCompact(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("compact", flag.ContinueOnError)
	root := fs.String("root", "", "generation root directory (required)")
	walPath := fs.String("wal", "", "mutation WAL to replay (default <root>/mutations.wal)")
	in := fs.String("in", "", "base graph file; required only when -root holds no generation yet")
	eps := fs.Float64("eps", 2, "precision parameter epsilon")
	workers := fs.Int("workers", 0, "build parallelism (0 = GOMAXPROCS)")
	members := fs.String("members", "", "cluster membership file; also write per-shard partition files")
	force := fs.Bool("force", false, "build a generation even with no pending mutations")
	incremental := fs.Bool("incremental", false, "delta-scoped rebuild off the newest generation (byte-identical output; requires an existing generation)")
	format := fs.String("format", "fsdl2", "label container written into the generation: fsdl2 or fsdl3 (mmap-first)")
	compress := fs.Bool("compress", false, "compress FSDL3 record payloads (requires -format fsdl3)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	format3, err := parseFormat(*format, *compress)
	if err != nil {
		return err
	}
	if *root == "" {
		return fmt.Errorf("-root is required")
	}
	if *walPath == "" {
		*walPath = filepath.Join(*root, "mutations.wal")
	}

	// Resume from the newest intact generation when one exists: its
	// snapshot graph is the base the WAL delta applies to.
	var base *graphpkg.Graph
	generation := uint64(0)
	if m, dir, ok, err := labelstore.LatestGeneration(*root); err == nil && ok {
		base, err = liveupdate.LoadGenerationBase(dir)
		if err != nil {
			return err
		}
		generation = m.Generation
		fmt.Fprintf(out, "base: generation %d (%s), n=%d\n", m.Generation, dir, base.NumVertices())
	} else if err != nil && *in == "" {
		return err
	}
	if base == nil {
		if *in == "" {
			return fmt.Errorf("no generation under %s: -in is required for the first compaction", *root)
		}
		g, err := loadGraph(*in)
		if err != nil {
			return err
		}
		base = g
		fmt.Fprintf(out, "base: %s, n=%d (first compaction)\n", *in, base.NumVertices())
	}

	p, err := liveupdate.Open(liveupdate.Config{Base: base, WALPath: *walPath, Generation: generation})
	if err != nil {
		return err
	}
	defer p.Close()
	pending := p.Pending()
	fmt.Fprintf(out, "wal: %s, seq %d, %d pending delta edges\n", *walPath, p.Seq(), pending)
	if pending == 0 && !*force {
		fmt.Fprintln(out, "nothing to compact (use -force to rebuild anyway)")
		return nil
	}

	opts := liveupdate.CompactOptions{Epsilon: *eps, Workers: *workers, Compress: *compress}
	if format3 {
		opts.Format = 3
	}
	if *members != "" {
		m, err := cluster.LoadMembership(*members)
		if err != nil {
			return err
		}
		parts := m.Ring().Partition(base.NumVertices())
		opts.Partitions = make(map[string][]int, len(m.Nodes))
		for i, node := range m.Nodes {
			opts.Partitions[node.Name] = parts[i]
		}
	}

	if *incremental {
		if generation == 0 {
			return fmt.Errorf("-incremental needs an existing generation under %s", *root)
		}
		prevDir := filepath.Join(*root, labelstore.GenerationDirName(generation))
		prevStore, err := liveupdate.LoadGenerationStore(prevDir)
		if err != nil {
			return err
		}
		// The previous scheme is not persisted; rebuild it from the base
		// graph it came from. The build is deterministic, so the
		// reconstruction matches the original bit for bit and the
		// spliced output stays byte-identical to a full rebuild.
		prevScheme, err := core.BuildSchemeWorkers(base, *eps, *workers)
		if err != nil {
			return fmt.Errorf("rebuild generation %d scheme: %w", generation, err)
		}
		prev := &liveupdate.PrevGeneration{Generation: generation, Dir: prevDir, Scheme: prevScheme, Store: prevStore}
		// Hard-linking a clean partition forward requires the previous
		// file to hold the same id list; trust the current layout only
		// where the previous manifest agrees, so a membership change
		// can't alias a stale partition file into the new generation.
		if opts.Partitions != nil {
			if pm, err := labelstore.ReadManifestDir(prevDir); err == nil {
				prev.Partitions = partitionsMatchingManifest(opts.Partitions, pm)
			}
		}
		opts.Prev = prev
		fmt.Fprintf(out, "incremental: delta-scoped rebuild off generation %d\n", generation)
	}

	if !p.BeginCompaction() {
		return fmt.Errorf("compaction already in flight")
	}
	defer p.EndCompaction()
	res, err := liveupdate.Compact(p, *root, opts)
	if err != nil {
		return err
	}
	// Journal the compaction marker so the next replay (serve restart
	// or another compact run) starts from this generation, not seq 0.
	if err := p.Commit(res.Snapshot); err != nil {
		return err
	}
	for _, f := range res.Manifest.Files {
		fmt.Fprintf(out, "  %s: %d records, crc %08x\n", f.Name, f.Records, f.CRC)
	}
	if res.Incremental {
		fmt.Fprintf(out, "incremental: %d/%d labels re-extracted, changed shards %v\n",
			res.DirtyLabels, res.Snapshot.Graph.NumVertices(), res.ChangedPartitions)
	}
	fmt.Fprintf(out, "generation %d written to %s (seq %d, n=%d)\n",
		res.Snapshot.Generation, res.Dir, res.Snapshot.Seq, res.Snapshot.Graph.NumVertices())
	return nil
}

// partitionsMatchingManifest keeps the entries of parts whose file in
// the previous generation plausibly held the same id list (record
// count and id range agree) — the guard that keeps a membership change
// from hard-linking a stale partition file forward.
func partitionsMatchingManifest(parts map[string][]int, m *labelstore.Manifest) map[string][]int {
	byName := make(map[string]labelstore.ManifestFile, len(m.Files))
	for _, f := range m.Files {
		byName[f.Name] = f
	}
	out := make(map[string][]int, len(parts))
	for name, ids := range parts {
		f, ok := byName[name+".fsdl"]
		if !ok || f.Records != len(ids) || len(ids) == 0 {
			continue
		}
		lo, hi := ids[0], ids[0]
		for _, v := range ids {
			lo, hi = min(lo, v), max(hi, v)
		}
		if f.First == lo && f.Last == hi {
			out[name] = ids
		}
	}
	return out
}
