package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fsdl/internal/liveupdate"
)

// writeWAL journals a mutation batch the way a draining fsdl-serve
// would, so `fsdl compact` has a tail to replay.
func writeWAL(t *testing.T, graphPath, walPath string) {
	t.Helper()
	g, err := loadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := liveupdate.Open(liveupdate.Config{Base: g, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply([]liveupdate.Mutation{
		{Op: liveupdate.MutDelete, U: 0, V: 1},
		{Op: liveupdate.MutInsert, U: 0, V: 35},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCLICompact(t *testing.T) {
	graphPath := genGraphFile(t)
	root := t.TempDir()
	wal := filepath.Join(root, "mutations.wal")
	writeWAL(t, graphPath, wal)

	out, err := runCLI(t, "compact", "-root", root, "-in", graphPath)
	if err != nil {
		t.Fatalf("compact: %v\n%s", err, out)
	}
	if !strings.Contains(out, "2 pending delta edges") || !strings.Contains(out, "generation 2 written") {
		t.Fatalf("compact output:\n%s", out)
	}
	genDir := filepath.Join(root, "gen-0000000002")
	for _, f := range []string{"MANIFEST", "labels.fsdl", "graph.txt"} {
		if _, err := os.Stat(filepath.Join(genDir, f)); err != nil {
			t.Fatalf("generation file %s: %v", f, err)
		}
	}

	// The baked store answers the inserted edge directly.
	q, err := runCLI(t, "querydb", "-db", filepath.Join(genDir, "labels.fsdl"), "-s", "0", "-t", "35")
	if err != nil {
		t.Fatalf("querydb on generation: %v", err)
	}
	if !strings.Contains(q, "avoiding |F|=0: 1 ") {
		t.Fatalf("querydb on compacted store:\n%s", q)
	}

	// A second run replays past the compaction marker: nothing pending.
	out, err = runCLI(t, "compact", "-root", root)
	if err != nil {
		t.Fatalf("re-compact: %v", err)
	}
	if !strings.Contains(out, "nothing to compact") || !strings.Contains(out, "base: generation 2") {
		t.Fatalf("re-compact output:\n%s", out)
	}
}

func TestCLICompactPartitions(t *testing.T) {
	graphPath := genGraphFile(t)
	dir := t.TempDir()
	root := filepath.Join(dir, "gens")
	wal := filepath.Join(dir, "mutations.wal")
	writeWAL(t, graphPath, wal)
	members := filepath.Join(dir, "members.txt")
	if err := os.WriteFile(members, []byte("replication 2\nshard0 127.0.0.1:9000\nshard1 127.0.0.1:9001\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := runCLI(t, "compact", "-root", root, "-wal", wal, "-in", graphPath, "-members", members)
	if err != nil {
		t.Fatalf("compact -members: %v\n%s", err, out)
	}
	for _, f := range []string{"shard0.fsdl", "shard1.fsdl"} {
		if _, err := os.Stat(filepath.Join(root, "gen-0000000002", f)); err != nil {
			t.Fatalf("partition file %s: %v", f, err)
		}
		if !strings.Contains(out, f) {
			t.Fatalf("output missing %s:\n%s", f, out)
		}
	}
}

// TestCLICompactIncremental: a second compaction with -incremental
// builds delta-scoped off the newest generation — same files, same
// partition layout, and the baked store answers for the new delta.
func TestCLICompactIncremental(t *testing.T) {
	graphPath := genGraphFile(t)
	dir := t.TempDir()
	root := filepath.Join(dir, "gens")
	wal := filepath.Join(dir, "mutations.wal")
	writeWAL(t, graphPath, wal)
	members := filepath.Join(dir, "members.txt")
	if err := os.WriteFile(members, []byte("replication 2\nshard0 127.0.0.1:9000\nshard1 127.0.0.1:9001\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// -incremental with no generation yet is an explicit error.
	if _, err := runCLI(t, "compact", "-root", root, "-wal", wal, "-in", graphPath, "-incremental"); err == nil {
		t.Fatal("-incremental without a base generation accepted")
	}

	if out, err := runCLI(t, "compact", "-root", root, "-wal", wal, "-in", graphPath, "-members", members); err != nil {
		t.Fatalf("seed compact: %v\n%s", err, out)
	}

	// Journal a fresh tail on top of generation 2.
	base, err := liveupdate.LoadGenerationBase(filepath.Join(root, "gen-0000000002"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := liveupdate.Open(liveupdate.Config{Base: base, WALPath: wal, Generation: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply([]liveupdate.Mutation{{Op: liveupdate.MutInsert, U: 2, V: 33}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	out, err := runCLI(t, "compact", "-root", root, "-wal", wal, "-members", members, "-incremental")
	if err != nil {
		t.Fatalf("compact -incremental: %v\n%s", err, out)
	}
	if !strings.Contains(out, "delta-scoped rebuild off generation 2") ||
		!strings.Contains(out, "labels re-extracted") ||
		!strings.Contains(out, "generation 3 written") {
		t.Fatalf("incremental output:\n%s", out)
	}
	genDir := filepath.Join(root, "gen-0000000003")
	for _, f := range []string{"MANIFEST", "labels.fsdl", "graph.txt", "shard0.fsdl", "shard1.fsdl"} {
		if _, err := os.Stat(filepath.Join(genDir, f)); err != nil {
			t.Fatalf("generation file %s: %v", f, err)
		}
	}
	// The delta-scoped store answers for the freshly inserted edge.
	q, err := runCLI(t, "querydb", "-db", filepath.Join(genDir, "labels.fsdl"), "-s", "2", "-t", "33")
	if err != nil {
		t.Fatalf("querydb on incremental generation: %v", err)
	}
	if !strings.Contains(q, "avoiding |F|=0: 1 ") {
		t.Fatalf("querydb on incremental store:\n%s", q)
	}
}

func TestCLICompactErrors(t *testing.T) {
	root := t.TempDir()
	if _, err := runCLI(t, "compact"); err == nil {
		t.Error("compact without -root must error")
	}
	if _, err := runCLI(t, "compact", "-root", root); err == nil {
		t.Error("compact with no generation and no -in must error")
	}
}
