package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestLBCountingTableOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-skip-attack"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Theorem 3.1", "alpha", "2^{alpha/2}"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "attack instance") {
		t.Error("-skip-attack should skip the attack")
	}
}

func TestLBAttack(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-p", "3", "-d", "2", "-seed", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "reconstruction via 'everywhere failure' queries") {
		t.Errorf("missing attack section:\n%s", out)
	}
	if !strings.Contains(out, "0 spurious") {
		t.Errorf("attack should recover exactly:\n%s", out)
	}
}

func TestLBRejectsOddD(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-p", "3", "-d", "3"}, &buf); err == nil {
		t.Error("odd d must error (H_{p,d} undefined)")
	}
	// Malformed input must fail whole: no partial counting table.
	if buf.Len() != 0 {
		t.Errorf("odd d produced partial output before failing:\n%s", buf.String())
	}
}

func TestLBRejectsMalformedWithoutPartialOutput(t *testing.T) {
	for _, args := range [][]string{
		{"-p", "1", "-d", "2"},
		{"-p", "3", "-d", "0"},
		{"-p", "1000", "-d", "10"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("%v must error", args)
		}
		if buf.Len() != 0 {
			t.Errorf("%v produced partial output before failing:\n%s", args, buf.String())
		}
	}
}

func TestLBBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Error("bad flag must error")
	}
}
