// Command fsdl-lb demonstrates the Theorem 3.1 lower bound: it prints the
// counting table for the family 𝓕_{n,α} over a sweep of (p,d), then mounts
// the adjacency-reconstruction attack against this library's own labeling
// scheme on a random family member, recovering the graph bit for bit.
//
// Usage:
//
//	fsdl-lb [-p 3] [-d 2] [-seed 1] [-skip-attack]
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"fsdl/internal/lowerbound"
	"fsdl/internal/oracle"
	"fsdl/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fsdl-lb:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fsdl-lb", flag.ContinueOnError)
	p := fs.Int("p", 3, "grid side p for the attack instance")
	d := fs.Int("d", 2, "grid dimension d for the attack instance (even)")
	seed := fs.Int64("seed", 1, "random seed")
	skipAttack := fs.Bool("skip-attack", false, "print only the counting table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate the attack parameters before producing ANY output: a
	// malformed (p,d) must fail whole, not after the counting table.
	if !*skipAttack {
		if err := lowerbound.ValidateFamily(*p, *d); err != nil {
			return fmt.Errorf("invalid attack instance: %w (use -skip-attack for the counting table alone)", err)
		}
	}

	table := stats.NewTable("p", "d", "n", "alpha", "|E(G)|", "|E(H)|", "free",
		"bits/label >=", "2^{alpha/2}")
	for _, pd := range [][2]int{{4, 2}, {8, 2}, {16, 2}, {2, 4}, {3, 4}, {2, 6}} {
		b, err := lowerbound.CountingBound(pd[0], pd[1])
		if err != nil {
			return err
		}
		table.AddRow(b.P, b.D, b.N, b.Alpha, b.GridEdges, b.SpannerEdges, b.FreeEdges,
			b.BitsPerLabel, math.Pow(2, float64(b.Alpha)/2))
	}
	fmt.Fprintln(out, "Theorem 3.1 counting bound over the family F_{n,alpha} (subgraphs of G_{p,d} containing H_{p,d}):")
	fmt.Fprint(out, table.String())
	if *skipAttack {
		return nil
	}

	rng := rand.New(rand.NewSource(*seed))
	member, chosen, err := lowerbound.RandomFamilyMember(*p, *d, rng)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nattack instance: F_{%d,%d} member, n=%d, m=%d (%d random free edges chosen)\n",
		*p, *d, member.NumVertices(), member.NumEdges(), len(chosen))
	o, err := oracle.BuildStatic(member, 2)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "labeling-scheme oracle built: %d labels, %d total bits\n",
		o.NumVertices(), o.SizeBits())
	rec, err := lowerbound.ReconstructAdjacency(member.NumVertices(), o)
	if err != nil {
		return err
	}
	missing := 0
	member.ForEachEdge(func(u, v int) {
		if !rec.HasEdge(u, v) {
			missing++
		}
	})
	extra := rec.NumEdges() - (member.NumEdges() - missing)
	fmt.Fprintf(out, "reconstruction via 'everywhere failure' queries F(i,j) = V \\ {i,j}: %d/%d edges recovered, %d spurious\n",
		member.NumEdges()-missing, member.NumEdges(), extra)
	if missing == 0 && extra == 0 {
		fmt.Fprintln(out, "=> the oracle's answers encode the whole graph: the labels of ANY forbidden-set connectivity scheme carry >= log2|F_{n,alpha}| = (free edges) bits in total.")
	}
	return nil
}
